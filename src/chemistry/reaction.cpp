#include "chemistry/reaction.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "gas/constants.hpp"
#include "gas/thermo.hpp"

namespace cat::chemistry {

using gas::constants::kPressureRef;
using gas::constants::kRu;

int Reaction::delta_nu() const {
  int d = 0;
  for (const auto& s : products) d += s.nu;
  for (const auto& s : reactants) d -= s.nu;
  return d;
}

Mechanism::Mechanism(gas::SpeciesSet set, std::vector<Reaction> reactions)
    : set_(std::move(set)), mix_(set_), reactions_(std::move(reactions)) {
  for (const auto& r : reactions_) {
    for (const auto& st : r.reactants)
      CAT_REQUIRE(st.species < set_.size() && st.nu > 0, "bad reactant");
    for (const auto& st : r.products)
      CAT_REQUIRE(st.species < set_.size() && st.nu > 0, "bad product");
    if (r.has_third_body)
      CAT_REQUIRE(r.third_body_efficiency.size() == set_.size(),
                  "third-body efficiency size mismatch");
    CAT_REQUIRE(r.arrhenius_a > 0.0, "non-positive pre-exponential");
    // Element balance check: production must conserve every element.
    std::array<int, gas::kNumElements> bal{};
    for (const auto& st : r.reactants)
      for (std::size_t e = 0; e < gas::kNumElements; ++e)
        bal[e] -= st.nu * set_.species(st.species).composition[e];
    for (const auto& st : r.products)
      for (std::size_t e = 0; e < gas::kNumElements; ++e)
        bal[e] += st.nu * set_.species(st.species).composition[e];
    for (std::size_t e = 0; e < gas::kNumElements; ++e)
      CAT_REQUIRE(bal[e] == 0, "reaction does not conserve elements: " + r.label);
  }
}

double Mechanism::forward_rate(std::size_t r, double t, double tv) const {
  const Reaction& rx = reactions_[r];
  double tc = t;
  switch (rx.type) {
    case ReactionType::kDissociation:
      tc = std::sqrt(t * tv);  // Park's geometric-mean controlling T
      break;
    case ReactionType::kElectronImpact:
      tc = tv;
      break;
    case ReactionType::kExchange:
    case ReactionType::kAssociativeIonization:
      tc = t;
      break;
  }
  tc = std::max(tc, 50.0);
  return rx.arrhenius_a * std::pow(tc, rx.arrhenius_n) *
         std::exp(-rx.theta / tc);
}

double Mechanism::equilibrium_constant(std::size_t r, double t) const {
  const Reaction& rx = reactions_[r];
  double dg = 0.0;
  for (const auto& st : rx.products)
    dg += st.nu * gas::gibbs_mole(set_.species(st.species), t, kPressureRef);
  for (const auto& st : rx.reactants)
    dg -= st.nu * gas::gibbs_mole(set_.species(st.species), t, kPressureRef);
  const double kp = std::exp(std::clamp(-dg / (kRu * t), -300.0, 300.0));
  // K_c = K_p (p_ref / Ru T)^dnu with concentrations in mol/m^3.
  return kp * std::pow(kPressureRef / (kRu * t), rx.delta_nu());
}

double Mechanism::backward_rate(std::size_t r, double t, double tv) const {
  // Detailed balance at the controlling temperature of the reverse path.
  // Reverse of electron-impact ionization (three-body recombination) is
  // electron-driven -> evaluate K_c at Tv; all others at T.
  const Reaction& rx = reactions_[r];
  const double tb =
      rx.type == ReactionType::kElectronImpact ? std::max(tv, 50.0) : t;
  const double kf_at_tb = [&] {
    // k_f at the backward controlling temperature (not the mixed forward
    // controlling temperature) so that kf/kb = K_c holds exactly at
    // thermal equilibrium.
    return rx.arrhenius_a * std::pow(std::max(tb, 50.0), rx.arrhenius_n) *
           std::exp(-rx.theta / std::max(tb, 50.0));
  }();
  const double kc = equilibrium_constant(r, tb);
  if (kc <= 0.0) return 0.0;
  return kf_at_tb / kc;
}

void Mechanism::production_rates(std::span<const double> c, double t,
                                 double tv, std::span<double> wdot) const {
  CAT_REQUIRE(c.size() == n_species() && wdot.size() == n_species(),
              "size mismatch");
  std::fill(wdot.begin(), wdot.end(), 0.0);
  for (std::size_t r = 0; r < reactions_.size(); ++r) {
    const Reaction& rx = reactions_[r];
    const double kf = forward_rate(r, t, tv);
    const double kb = backward_rate(r, t, tv);

    double fwd = kf, bwd = kb;
    for (const auto& st : rx.reactants)
      for (int k = 0; k < st.nu; ++k) fwd *= std::max(c[st.species], 0.0);
    for (const auto& st : rx.products)
      for (int k = 0; k < st.nu; ++k) bwd *= std::max(c[st.species], 0.0);

    double rate = fwd - bwd;
    if (rx.has_third_body) {
      double cm = 0.0;
      for (std::size_t s = 0; s < n_species(); ++s)
        cm += rx.third_body_efficiency[s] * std::max(c[s], 0.0);
      rate *= cm;
    }
    for (const auto& st : rx.reactants) wdot[st.species] -= st.nu * rate;
    for (const auto& st : rx.products) wdot[st.species] += st.nu * rate;
  }
}

void Mechanism::mass_production_rates(double rho, std::span<const double> y,
                                      double t, double tv,
                                      std::span<double> wdot_mass) const {
  std::vector<double> c(n_species());
  for (std::size_t s = 0; s < n_species(); ++s)
    c[s] = rho * y[s] / set_.species(s).molar_mass;
  std::vector<double> wdot(n_species());
  production_rates(c, t, tv, wdot);
  for (std::size_t s = 0; s < n_species(); ++s)
    wdot_mass[s] = wdot[s] * set_.species(s).molar_mass;
}

double Mechanism::chemistry_vibronic_source(std::span<const double> c,
                                            double t, double tv) const {
  std::vector<double> wdot(n_species());
  production_rates(c, t, tv, wdot);
  double q = 0.0;
  for (std::size_t s = 0; s < n_species(); ++s) {
    const gas::Species& sp = set_.species(s);
    if (!sp.is_molecule()) continue;
    // Molecules appear/disappear carrying the prevailing vibronic energy.
    q += wdot[s] * gas::vibronic_energy_mole(sp, tv);
  }
  return q;
}

double Mechanism::chemical_time_scale(std::span<const double> c, double t,
                                      double tv) const {
  std::vector<double> wdot(n_species());
  production_rates(c, t, tv, wdot);
  double tau = 1e30;
  for (std::size_t s = 0; s < n_species(); ++s) {
    if (std::fabs(wdot[s]) < 1e-300) continue;
    const double cs = std::max(c[s], 1e-12);
    tau = std::min(tau, cs / std::fabs(wdot[s]));
  }
  return tau;
}

}  // namespace cat::chemistry
