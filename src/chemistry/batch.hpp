#pragma once
/// \file batch.hpp
/// SoA batched chemistry kernels: evaluate finite-rate production rates for
/// a contiguous block of cells per call instead of re-dispatching the
/// scalar per-cell path (reaction.cpp) once per cell.
///
/// Layout: all batch arrays are structure-of-arrays with a species-major
/// (or reaction-major) plane pitch — element (s, i) of an N-cell block
/// lives at [s * stride + i]. Cells are the fast axis, so the inner loops
/// are contiguous, non-aliased and auto-vectorizable; the transcendental
/// calls stay scalar libm calls (vector math libraries round differently),
/// so the hot win is hoisting the per-cell dispatch, the shared log(T) and
/// the cache traffic, plus thread fan-out through BatchEvaluator.
///
/// Bitwise contract: for every cell of every block size the batch kernels
/// execute the same floating-point operations in the same order as the
/// scalar Mechanism::mass_production_rates path, so results are bitwise
/// identical to the scalar loop — for any block size and any thread count.
/// The BatchEquivalence test suite pins this.

#include <cstdint>
#include <span>
#include <vector>

#include "chemistry/reaction.hpp"
#include "core/thread_pool.hpp"

namespace cat::chemistry {

/// Preallocated SoA scratch for the batch kernels. Plane pitch is
/// capacity(); growth-only, so spans held by a caller stay valid across a
/// rebind to the same mechanism at no larger block size. One workspace per
/// thread (see BatchEvaluator).
struct BatchWorkspace {
  /// Size all planes for mechanism \p m and at least \p capacity cells per
  /// plane. Growth-only: never shrinks, no-op when already bound at
  /// sufficient capacity.
  void bind(const Mechanism& m, std::size_t capacity);

  std::size_t capacity() const { return cap_; }

  // --- SoA planes, pitch = capacity() ---
  std::vector<double> c;          ///< [species][cell] molar concentrations
  std::vector<double> gibbs_t;    ///< [species][cell] g_s(T, p_ref)
  std::vector<double> gibbs_tv;   ///< [species][cell] g_s(Tv_cl, p_ref)
  std::vector<double> wdot_mole;  ///< [species][cell] molar rates
  std::vector<double> kf;         ///< [reaction][cell] forward coefficients
  std::vector<double> kb;         ///< [reaction][cell] backward coefficients

  // --- per-cell temperature intermediates ---
  std::vector<double> log_t_raw;  ///< log(T) (unclamped; Gibbs argument)
  std::vector<double> log_t;      ///< log(max(T, 50))
  std::vector<double> inv_t;      ///< 1 / max(T, 50)
  std::vector<double> conc_t;     ///< p_ref / (Ru T)
  std::vector<double> log_tc_d;   ///< log(max(sqrt(T Tv), 50)) (dissociation)
  std::vector<double> inv_tc_d;
  std::vector<double> tv_cl;      ///< max(Tv, 50) (electron-impact paths)
  std::vector<double> log_tv;
  std::vector<double> inv_tv;
  std::vector<double> conc_tv;    ///< p_ref / (Ru Tv_cl)

  // --- per-cell reaction scratch ---
  std::vector<double> fwd;    ///< forward progress accumulator
  std::vector<double> bwd;    ///< backward progress accumulator
  std::vector<double> cm;     ///< third-body concentration
  std::vector<double> kf_tb;  ///< k_f at the backward controlling T
  std::vector<double> dg;     ///< Gibbs reaction energy

 private:
  std::uint64_t bound_serial_ = 0;  ///< identity of the bound mechanism
  std::size_t cap_ = 0;
};

/// Cell-parallel driver over Mechanism::mass_production_rates_batch:
/// partitions an N-cell sweep into one contiguous chunk per pool thread
/// (static split — deterministic for a given thread count) and each chunk
/// into cache-resident blocks of block() cells. Because every cell is an
/// independent map, results are bitwise identical for ANY thread count and
/// ANY block size. Owns one BatchWorkspace per chunk; after the first call
/// at the largest N, evaluation performs zero heap allocations.
class BatchEvaluator {
 public:
  /// Default cells per block: big enough to amortize the per-block setup,
  /// small enough that the ~(2 n_species + 2 n_reactions + 15) doubles per
  /// cell of workspace planes stay L1/L2-resident.
  static constexpr std::size_t kDefaultBlock = 64;

  /// \p pool may be null (serial evaluation). The pool is borrowed, not
  /// owned, and must outlive the evaluator.
  explicit BatchEvaluator(const Mechanism& m,
                          std::size_t block = kDefaultBlock,
                          core::ThreadPool* pool = nullptr);

  std::size_t block() const { return block_; }
  const Mechanism& mechanism() const { return *mech_; }

  /// Batched Mechanism::mass_production_rates over n = rho.size() cells.
  /// \p y and \p wdot_mass are SoA with plane pitch \p stride >= n.
  void mass_production_rates(std::span<const double> rho,
                             std::span<const double> y,
                             std::span<const double> t,
                             std::span<const double> tv,
                             std::span<double> wdot_mass, std::size_t stride);

 private:
  const Mechanism* mech_;
  std::size_t block_;
  core::ThreadPool* pool_;
  std::vector<BatchWorkspace> ws_;  ///< one per chunk (= pool thread)
};

}  // namespace cat::chemistry
