#pragma once
/// \file workspace.hpp
/// Preallocated scratch state for the zero-allocation chemistry hot path.
///
/// Workspace-parameter convention (used across chemistry/, numerics/ode and
/// the reactor RHS closures): every hot-path kernel has an overload taking a
/// caller-owned workspace that holds all per-call temporaries, so repeated
/// evaluation performs zero heap allocations. The workspace also memoizes
/// temperature-keyed intermediates — per-species Gibbs energies and
/// per-reaction forward/backward rate coefficients depend only on (T, Tv),
/// so re-evaluations at an unchanged temperature (every species column of a
/// finite-difference Jacobian, every cell of an isothermal sweep) skip all
/// transcendental work. A Workspace is bound to one Mechanism at a time and
/// rebinding (or a first use) resizes buffers and invalidates the caches.
/// Workspaces are not thread-safe; use one per thread.

#include <cstdint>
#include <vector>

namespace cat::chemistry {

class Mechanism;

struct Workspace {
  /// Size buffers for \p m and invalidate caches if not already bound to
  /// it. Cheap (two comparisons) when already bound.
  void bind(const Mechanism& m);

  // --- per-species buffers (size n_species after bind) ---
  std::vector<double> c;          ///< molar concentrations [mol/m^3]
  std::vector<double> wdot_mole;  ///< molar production rates [mol/(m^3 s)];
                                  ///< left holding the latest kernel result
  std::vector<double> gibbs_t;    ///< g_s(T, p_ref) [J/mol]
  std::vector<double> gibbs_tv;   ///< g_s(Tv, p_ref) (electron-impact paths)
  std::vector<double> vib_e;      ///< vibronic energy at Tv [J/mol]

  // --- per-reaction buffers (size n_reactions after bind) ---
  std::vector<double> kf;  ///< forward rate coefficients
  std::vector<double> kb;  ///< backward rate coefficients

  // --- memo keys (negative = invalid) ---
  double gibbs_t_key = -1.0;
  double gibbs_tv_key = -1.0;
  double rate_t_key = -1.0;
  double rate_tv_key = -1.0;
  double vib_e_key = -1.0;

 private:
  /// Identity of the bound mechanism (serial number, not address, so a
  /// mechanism reallocated at a stale address can't hit a stale cache).
  std::uint64_t bound_serial_ = 0;
};

}  // namespace cat::chemistry
