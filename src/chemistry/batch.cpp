#include "chemistry/batch.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "gas/constants.hpp"
#include "gas/thermo_batch.hpp"

namespace cat::chemistry {

using gas::constants::kPressureRef;
using gas::constants::kRu;

namespace {

/// Integer power by repeated multiplication — same helper as reaction.cpp
/// (|dnu| is 0..2 in practice); duplicated so both TUs stay self-contained
/// while executing identical operations.
double pow_int(double base, int e) {
  if (e == 0) return 1.0;
  const bool neg = e < 0;
  double r = 1.0;
  for (int k = neg ? -e : e; k > 0; --k) r *= base;
  return neg ? 1.0 / r : r;
}

}  // namespace

// cat-lint: allow-alloc (workspace growth; no-op once bound at capacity)
void BatchWorkspace::bind(const Mechanism& m, std::size_t capacity) {
  if (bound_serial_ == m.serial_ && capacity <= cap_) return;
  bound_serial_ = m.serial_;
  cap_ = std::max(cap_, capacity);  // growth-only
  const std::size_t ns = m.n_species(), nr = m.n_reactions();
  c.resize(ns * cap_);
  gibbs_t.resize(ns * cap_);
  gibbs_tv.resize(ns * cap_);
  wdot_mole.resize(ns * cap_);
  kf.resize(nr * cap_);
  kb.resize(nr * cap_);
  log_t_raw.resize(cap_);
  log_t.resize(cap_);
  inv_t.resize(cap_);
  conc_t.resize(cap_);
  log_tc_d.resize(cap_);
  inv_tc_d.resize(cap_);
  tv_cl.resize(cap_);
  log_tv.resize(cap_);
  inv_tv.resize(cap_);
  conc_tv.resize(cap_);
  fwd.resize(cap_);
  bwd.resize(cap_);
  cm.resize(cap_);
  kf_tb.resize(cap_);
  dg.resize(cap_);
}

void Mechanism::production_rates_batch(std::span<const double> c,
                                       std::span<const double> t,
                                       std::span<const double> tv,
                                       std::span<double> wdot,
                                       std::size_t stride,
                                       BatchWorkspace& ws) const {
  // NOTE: this is the SoA restatement of update_rate_coefficients +
  // production_rates (reaction.cpp). Every per-cell value is produced by
  // the same floating-point operations in the same order as the scalar
  // path — the bitwise contract pinned by the BatchEquivalence tests.
  // Touch both kernels (and those tests) together when changing the rate
  // model.
  const std::size_t n = t.size();
  const std::size_t ns = n_species(), nr = n_reactions();
  CAT_REQUIRE(tv.size() == n, "batch temperature spans must match");
  CAT_REQUIRE(stride >= n, "SoA stride smaller than cell count");
  CAT_REQUIRE(c.size() >= (ns - 1) * stride + n &&
                  wdot.size() >= (ns - 1) * stride + n,
              "SoA plane size mismatch");
  if (n == 0) return;
  ws.bind(*this, n);
  const std::size_t cap = ws.capacity();

  // Which controlling-temperature classes does this mechanism use? (The
  // scalar path computes these lazily per cell; nr is tiny, so one scan.)
  bool need_diss = false, need_tv = false;
  for (const auto& rx : reactions_) {
    if (rx.type == ReactionType::kDissociation) need_diss = true;
    if (rx.type == ReactionType::kElectronImpact) need_tv = true;
  }

  // --- per-cell temperature intermediates -------------------------------
  static const double kLog50 = std::log(50.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double ti = t[i];
    CAT_REQUIRE(ti > 0.0, "temperature must be positive");
    ws.log_t_raw[i] = std::log(ti);
    // log(max(t, 50)) reuses log(t) when the clamp is inactive — bitwise
    // the same value, one transcendental saved.
    ws.log_t[i] = ti >= 50.0 ? ws.log_t_raw[i] : kLog50;
    ws.inv_t[i] = 1.0 / std::max(ti, 50.0);
    ws.conc_t[i] = kPressureRef / (kRu * ti);
  }
  if (need_diss) {
    for (std::size_t i = 0; i < n; ++i) {
      const double tc = std::max(std::sqrt(t[i] * tv[i]), 50.0);
      ws.log_tc_d[i] = std::log(tc);
      ws.inv_tc_d[i] = 1.0 / tc;
    }
  }
  if (need_tv) {
    for (std::size_t i = 0; i < n; ++i) {
      const double tvc = std::max(tv[i], 50.0);
      ws.tv_cl[i] = tvc;
      ws.log_tv[i] = std::log(tvc);
      ws.inv_tv[i] = 1.0 / tvc;
      ws.conc_tv[i] = kPressureRef / (kRu * tvc);
    }
  }

  // --- per-species Gibbs planes (one log(T) per cell, shared) -----------
  const std::span<const double> t_span = t.subspan(0, n);
  for (std::size_t s = 0; s < ns; ++s) {
    gas::gibbs_mole_fast_batch(
        set_.species(s), gibbs_const_[s], t_span,
        std::span<const double>(ws.log_t_raw.data(), n),
        std::span<double>(ws.gibbs_t.data() + s * cap, n));
  }
  if (need_tv) {
    for (std::size_t s = 0; s < ns; ++s) {
      gas::gibbs_mole_fast_batch(
          set_.species(s), gibbs_const_[s],
          std::span<const double>(ws.tv_cl.data(), n),
          std::span<const double>(ws.log_tv.data(), n),
          std::span<double>(ws.gibbs_tv.data() + s * cap, n));
    }
  }

  // --- per-reaction rate coefficients -----------------------------------
  for (std::size_t r = 0; r < nr; ++r) {
    const Reaction& rx = reactions_[r];
    const double la = log_a_[r], an = rx.arrhenius_n, th = rx.theta;
    double* kfr = ws.kf.data() + r * cap;
    const double* g = ws.gibbs_t.data();  // pitch cap
    const double* tb = t.data();          // backward controlling T
    const double* conc_ref = ws.conc_t.data();

    switch (rx.type) {
      case ReactionType::kDissociation:
        for (std::size_t i = 0; i < n; ++i)
          kfr[i] = std::exp(la + an * ws.log_tc_d[i] - th * ws.inv_tc_d[i]);
        for (std::size_t i = 0; i < n; ++i)
          ws.kf_tb[i] = std::exp(la + an * ws.log_t[i] - th * ws.inv_t[i]);
        break;
      case ReactionType::kElectronImpact:
        for (std::size_t i = 0; i < n; ++i)
          kfr[i] = std::exp(la + an * ws.log_tv[i] - th * ws.inv_tv[i]);
        for (std::size_t i = 0; i < n; ++i) ws.kf_tb[i] = kfr[i];
        g = ws.gibbs_tv.data();
        tb = ws.tv_cl.data();
        conc_ref = ws.conc_tv.data();
        break;
      case ReactionType::kExchange:
      case ReactionType::kAssociativeIonization:
      default:
        for (std::size_t i = 0; i < n; ++i)
          kfr[i] = std::exp(la + an * ws.log_t[i] - th * ws.inv_t[i]);
        for (std::size_t i = 0; i < n; ++i) ws.kf_tb[i] = kfr[i];
        break;
    }

    // Detailed balance: dg accumulated products-then-reactants, same per-
    // cell order as the scalar loop.
    std::fill(ws.dg.begin(), ws.dg.begin() + static_cast<std::ptrdiff_t>(n),
              0.0);
    for (const auto& st : rx.products) {
      const double* gs = g + st.species * cap;
      for (std::size_t i = 0; i < n; ++i) ws.dg[i] += st.nu * gs[i];
    }
    for (const auto& st : rx.reactants) {
      const double* gs = g + st.species * cap;
      for (std::size_t i = 0; i < n; ++i) ws.dg[i] -= st.nu * gs[i];
    }
    const int dnu = delta_nu_[r];
    double* kbr = ws.kb.data() + r * cap;
    for (std::size_t i = 0; i < n; ++i) {
      const double kp =
          std::exp(std::clamp(-ws.dg[i] / (kRu * tb[i]), -300.0, 300.0));
      const double kc = kp * pow_int(conc_ref[i], dnu);
      kbr[i] = kc > 0.0 ? ws.kf_tb[i] / kc : 0.0;
    }
  }

  // --- production rates --------------------------------------------------
  for (std::size_t s = 0; s < ns; ++s)
    std::fill(wdot.begin() + static_cast<std::ptrdiff_t>(s * stride),
              wdot.begin() + static_cast<std::ptrdiff_t>(s * stride + n),
              0.0);
  for (std::size_t r = 0; r < nr; ++r) {
    const Reaction& rx = reactions_[r];
    const double* kfr = ws.kf.data() + r * cap;
    const double* kbr = ws.kb.data() + r * cap;
    for (std::size_t i = 0; i < n; ++i) ws.fwd[i] = kfr[i];
    for (std::size_t i = 0; i < n; ++i) ws.bwd[i] = kbr[i];
    for (const auto& st : rx.reactants) {
      const double* cs = c.data() + st.species * stride;
      for (int k = 0; k < st.nu; ++k)
        for (std::size_t i = 0; i < n; ++i)
          ws.fwd[i] *= std::max(cs[i], 0.0);
    }
    for (const auto& st : rx.products) {
      const double* cs = c.data() + st.species * stride;
      for (int k = 0; k < st.nu; ++k)
        for (std::size_t i = 0; i < n; ++i)
          ws.bwd[i] *= std::max(cs[i], 0.0);
    }
    if (rx.has_third_body) {
      std::fill(ws.cm.begin(), ws.cm.begin() + static_cast<std::ptrdiff_t>(n),
                0.0);
      const double* eff = rx.third_body_efficiency.data();
      for (std::size_t s = 0; s < ns; ++s) {
        const double* cs = c.data() + s * stride;
        const double es = eff[s];
        for (std::size_t i = 0; i < n; ++i)
          ws.cm[i] += es * std::max(cs[i], 0.0);
      }
      // rate = (fwd - bwd) * cm, same two-step order as the scalar path;
      // reuse fwd as the rate plane.
      for (std::size_t i = 0; i < n; ++i)
        ws.fwd[i] = (ws.fwd[i] - ws.bwd[i]) * ws.cm[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) ws.fwd[i] = ws.fwd[i] - ws.bwd[i];
    }
    for (const auto& st : rx.reactants) {
      double* ws_out = wdot.data() + st.species * stride;
      for (std::size_t i = 0; i < n; ++i) ws_out[i] -= st.nu * ws.fwd[i];
    }
    for (const auto& st : rx.products) {
      double* ws_out = wdot.data() + st.species * stride;
      for (std::size_t i = 0; i < n; ++i) ws_out[i] += st.nu * ws.fwd[i];
    }
  }
}

void Mechanism::mass_production_rates_batch(std::span<const double> rho,
                                            std::span<const double> y,
                                            std::span<const double> t,
                                            std::span<const double> tv,
                                            std::span<double> wdot_mass,
                                            std::size_t stride,
                                            BatchWorkspace& ws) const {
  const std::size_t n = rho.size();
  const std::size_t ns = n_species();
  CAT_REQUIRE(t.size() == n && tv.size() == n,
              "batch temperature spans must match");
  CAT_REQUIRE(stride >= n, "SoA stride smaller than cell count");
  CAT_REQUIRE(y.size() >= (ns - 1) * stride + n &&
                  wdot_mass.size() >= (ns - 1) * stride + n,
              "SoA plane size mismatch");
  if (n == 0) return;
  ws.bind(*this, n);
  const std::size_t cap = ws.capacity();
  for (std::size_t s = 0; s < ns; ++s) {
    const double* yi = y.data() + s * stride;
    const double inv_m = inv_molar_mass_[s];
    double* cs = ws.c.data() + s * cap;
    for (std::size_t i = 0; i < n; ++i) cs[i] = rho[i] * yi[i] * inv_m;
  }
  production_rates_batch(std::span<const double>(ws.c.data(), ns * cap), t,
                         tv, std::span<double>(ws.wdot_mole.data(), ns * cap),
                         cap, ws);
  for (std::size_t s = 0; s < ns; ++s) {
    const double* wm = ws.wdot_mole.data() + s * cap;
    const double m = molar_mass_[s];
    double* out = wdot_mass.data() + s * stride;
    for (std::size_t i = 0; i < n; ++i) out[i] = wm[i] * m;
  }
}

BatchEvaluator::BatchEvaluator(const Mechanism& m, std::size_t block,
                               core::ThreadPool* pool)
    : mech_(&m), block_(std::max<std::size_t>(block, 1)), pool_(pool) {
  const std::size_t chunks = pool_ ? pool_->size() : 1;
  ws_.resize(chunks);  // cat-lint: allow-alloc (construction)
}

void BatchEvaluator::mass_production_rates(std::span<const double> rho,
                                           std::span<const double> y,
                                           std::span<const double> t,
                                           std::span<const double> tv,
                                           std::span<double> wdot_mass,
                                           std::size_t stride) {
  const std::size_t n = rho.size();
  if (n == 0) return;
  const std::size_t chunks = ws_.size();
  // Static contiguous split: chunk k covers [k n / chunks, (k+1) n / chunks).
  // Every cell is an independent map, so the split (and the block
  // subdivision below) cannot change any result bit.
  auto run_chunk = [&](std::size_t k) {
    const std::size_t lo = k * n / chunks;
    const std::size_t hi = (k + 1) * n / chunks;
    BatchWorkspace& ws = ws_[k];
    for (std::size_t i0 = lo; i0 < hi; i0 += block_) {
      const std::size_t len = std::min(block_, hi - i0);
      mech_->mass_production_rates_batch(
          rho.subspan(i0, len), y.subspan(i0), t.subspan(i0, len),
          tv.subspan(i0, len), wdot_mass.subspan(i0), stride, ws);
    }
  };
  if (pool_ && chunks > 1) {
    pool_->parallel_for(chunks, run_chunk);
  } else {
    for (std::size_t k = 0; k < chunks; ++k) run_chunk(k);
  }
}

}  // namespace cat::chemistry
