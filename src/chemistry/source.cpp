#include "chemistry/source.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "gas/constants.hpp"
#include "gas/thermo.hpp"
#include "numerics/ode.hpp"

namespace cat::chemistry {

using gas::constants::kRu;

IsochoricReactor::IsochoricReactor(const Mechanism& mech) : mech_(mech) {}

double IsochoricReactor::energy(const State& state) const {
  return mech_.mixture().internal_energy_mass(state.y, state.t);
}

void IsochoricReactor::advance_coupled(State& state, double rho,
                                       double dt) const {
  const std::size_t ns = mech_.n_species();
  CAT_REQUIRE(state.y.size() == ns, "state size mismatch");
  // Unknowns: [y_0..y_{ns-1}, T]; energy conservation closes T:
  //   de/dt = 0  =>  cv dT/dt = -sum_s e_s(T) dy_s/dt
  numerics::OdeRhs rhs = [&](double, std::span<const double> u,
                             std::span<double> dudt) {
    std::vector<double> y(u.begin(), u.begin() + ns);
    gas::Mixture::clean_mass_fractions(y);
    const double t = std::clamp(u[ns], 200.0, 60000.0);
    std::vector<double> wdot(ns);
    mech_.mass_production_rates(rho, y, t, t, wdot);
    double esum = 0.0, cv = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const gas::Species& sp = mech_.species_set().species(s);
      const double e_s = gas::enthalpy_mass(sp, t) - kRu * t / sp.molar_mass;
      dudt[s] = wdot[s] / rho;
      esum += e_s * dudt[s];
      cv += y[s] * (gas::cp_mass(sp, t) - kRu / sp.molar_mass);
    }
    dudt[ns] = -esum / std::max(cv, 1e-6);
  };
  std::vector<double> u(ns + 1);
  std::copy(state.y.begin(), state.y.end(), u.begin());
  u[ns] = state.t;
  numerics::StiffIntegrator integ(rhs, nullptr,
                                  {.rel_tol = 1e-8,
                                   .abs_tol = 1e-14,
                                   .h_initial = 1e-12,
                                   .max_steps = 2'000'000});
  integ.integrate(0.0, dt, u);
  std::copy(u.begin(), u.begin() + ns, state.y.begin());
  gas::Mixture::clean_mass_fractions(state.y);
  state.t = u[ns];
}

void IsochoricReactor::advance_split(State& state, double rho,
                                     double dt) const {
  const std::size_t ns = mech_.n_species();
  CAT_REQUIRE(state.y.size() == ns, "state size mismatch");
  const double e_target = energy(state);  // adiabatic: e is invariant
  // Step 1: chemistry with frozen temperature.
  const double t_frozen = state.t;
  numerics::OdeRhs rhs = [&](double, std::span<const double> u,
                             std::span<double> dudt) {
    std::vector<double> y(u.begin(), u.end());
    gas::Mixture::clean_mass_fractions(y);
    std::vector<double> wdot(ns);
    mech_.mass_production_rates(rho, y, t_frozen, t_frozen, wdot);
    for (std::size_t s = 0; s < ns; ++s) dudt[s] = wdot[s] / rho;
  };
  std::vector<double> u(state.y);
  numerics::StiffIntegrator integ(rhs, nullptr,
                                  {.rel_tol = 1e-8,
                                   .abs_tol = 1e-14,
                                   .h_initial = 1e-12,
                                   .max_steps = 2'000'000});
  integ.integrate(0.0, dt, u);
  state.y = u;
  gas::Mixture::clean_mass_fractions(state.y);
  // Step 2: recover temperature from the (conserved) energy.
  state.t = mech_.mixture().temperature_from_energy(state.y, e_target,
                                                    state.t);
}

TwoTemperatureReactor::TwoTemperatureReactor(const Mechanism& mech)
    : mech_(mech), ttg_(mech.species_set()) {}

void TwoTemperatureReactor::advance(State& state, double rho,
                                    double dt) const {
  const std::size_t ns = mech_.n_species();
  CAT_REQUIRE(state.y.size() == ns, "state size mismatch");
  // Unknowns: [y_s..., T, Tv]. Total energy conservation closes T; the
  // vibronic pool evolves by Landau-Teller exchange plus the vibronic
  // energy carried by created/destroyed molecules.
  numerics::OdeRhs rhs = [&](double, std::span<const double> u,
                             std::span<double> dudt) {
    std::vector<double> y(u.begin(), u.begin() + ns);
    gas::Mixture::clean_mass_fractions(y);
    const double t = std::clamp(u[ns], 200.0, 80000.0);
    const double tv = std::clamp(u[ns + 1], 200.0, 80000.0);
    std::vector<double> wdot(ns), c(ns);
    mech_.mass_production_rates(rho, y, t, tv, wdot);
    for (std::size_t s = 0; s < ns; ++s)
      c[s] = rho * y[s] / mech_.species_set().species(s).molar_mass;
    const double p = ttg_.pressure(rho, y, t, tv);
    const double q_lt = ttg_.landau_teller_source(rho, y, t, tv, p);
    const double q_chem = mech_.chemistry_vibronic_source(c, t, tv);

    for (std::size_t s = 0; s < ns; ++s) dudt[s] = wdot[s] / rho;

    // d(ev)/dt per unit mass:
    const double dev_dt = (q_lt + q_chem) / rho;
    const double cv_v = std::max(ttg_.vibronic_cv(y, tv), 1e-6);
    // Subtract composition change contribution to ev at fixed Tv.
    double dev_comp = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const gas::Species& sp = mech_.species_set().species(s);
      const double evs = sp.is_electron()
                             ? 1.5 * kRu * tv / sp.molar_mass
                             : gas::vibronic_energy_mole(sp, tv) / sp.molar_mass;
      dev_comp += evs * dudt[s];
    }
    dudt[ns + 1] = (dev_dt - dev_comp) / cv_v;

    // Total energy conservation: de/dt = 0 with
    // e = sum y_s e_s(T, Tv):  cv_tr dT/dt = -sum e_s dy_s/dt - cv_v dTv/dt
    double esum = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const gas::Species& sp = mech_.species_set().species(s);
      const double t_ref = gas::constants::kTemperatureRef;
      const double h_th_ref =
          gas::internal_energy_thermal(sp, t_ref) + kRu * t_ref;
      double e_mole;
      if (sp.is_electron()) {
        e_mole = sp.h_formation_298 - h_th_ref + 1.5 * kRu * tv;
      } else {
        double etr = 1.5 * kRu * t;
        if (sp.rotor == gas::RotorType::kLinear) etr += kRu * t;
        if (sp.rotor == gas::RotorType::kNonlinear) etr += 1.5 * kRu * t;
        e_mole = sp.h_formation_298 - h_th_ref + etr +
                 gas::vibronic_energy_mole(sp, tv);
      }
      esum += e_mole / sp.molar_mass * dudt[s];
    }
    const double cv_tr = std::max(ttg_.trans_rot_cv(y), 1e-6);
    dudt[ns] = (-esum - cv_v * dudt[ns + 1]) / cv_tr;
  };

  std::vector<double> u(ns + 2);
  std::copy(state.y.begin(), state.y.end(), u.begin());
  u[ns] = state.t;
  u[ns + 1] = state.tv;
  numerics::StiffIntegrator integ(rhs, nullptr,
                                  {.rel_tol = 1e-7,
                                   .abs_tol = 1e-14,
                                   .h_initial = 1e-12,
                                   .max_steps = 2'000'000});
  integ.integrate(0.0, dt, u);
  std::copy(u.begin(), u.begin() + ns, state.y.begin());
  gas::Mixture::clean_mass_fractions(state.y);
  state.t = u[ns];
  state.tv = u[ns + 1];
}

}  // namespace cat::chemistry
