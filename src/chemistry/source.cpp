#include "chemistry/source.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "gas/constants.hpp"
#include "gas/thermo.hpp"

namespace cat::chemistry {

using gas::constants::kRu;

// cat-lint: allow-alloc (one-time construction: per-species tables)
IsochoricReactor::IsochoricReactor(const Mechanism& mech) : mech_(mech) {
  const std::size_t ns = mech_.n_species();
  h_const_.reserve(ns);
  inv_m_.reserve(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    const gas::Species& sp = mech_.species_set().species(s);
    h_const_.push_back(sp.h_formation_298 -
                       gas::reference_thermal_enthalpy(sp));
    inv_m_.push_back(1.0 / sp.molar_mass);
  }
  y_scratch_.resize(ns);
}

double IsochoricReactor::energy(const State& state) const {
  return mech_.mixture().internal_energy_mass(state.y, state.t);
}

void IsochoricReactor::advance_coupled(State& state, double rho,
                                       double dt) const {
  const std::size_t ns = mech_.n_species();
  CAT_REQUIRE(state.y.size() == ns, "state size mismatch");
  // Unknowns: [y_0..y_{ns-1}, T]; energy conservation closes T:
  //   de/dt = 0  =>  cv dT/dt = -sum_s e_s(T) dy_s/dt
  // All temporaries live in the reactor's persistent scratch: the RHS
  // performs zero heap allocations.
  std::vector<double>& y = y_scratch_;
  numerics::OdeRhs rhs = [&, rho](double t_now, std::span<const double> u,
                                  std::span<double> dudt) {
    std::copy(u.begin(), u.begin() + ns, y.begin());
    gas::Mixture::clean_mass_fractions(y);
    const double t = std::clamp(u[ns], 200.0, 60000.0);
    std::span<double> dydt = dudt.first(ns);
    mech_.mass_production_rates(rho, y, t, t, dydt, ws_);
    double esum = 0.0, cv = 0.0;
    const double inv_rho = 1.0 / rho;
    for (std::size_t s = 0; s < ns; ++s) {
      const gas::Species& sp = mech_.species_set().species(s);
      // Fused e_th/cv evaluation; e_s = (h_f - h_th_ref + e_th(T)) / M is
      // the specific internal energy incl. formation.
      const gas::ThermalEnergyCv te = gas::thermal_energy_cv(sp, t);
      const double e_s = (h_const_[s] + te.e) * inv_m_[s];
      dydt[s] *= inv_rho;
      esum += e_s * dydt[s];
      cv += y[s] * te.cv * inv_m_[s];
    }
    dudt[ns] = -esum / std::max(cv, 1e-6);
    if (source_) source_(t_now, u, dudt);
  };
  u_scratch_.resize(ns + 1);  // cat-lint: allow-alloc (no-op after 1st call)
  std::copy(state.y.begin(), state.y.end(), u_scratch_.begin());
  u_scratch_[ns] = state.t;
  numerics::StiffIntegrator integ(rhs, nullptr, stiff_opt_);
  integ.integrate(0.0, dt, std::span<double>(u_scratch_), stiff_);
  std::copy(u_scratch_.begin(), u_scratch_.begin() + ns, state.y.begin());
  gas::Mixture::clean_mass_fractions(state.y);
  state.t = u_scratch_[ns];
}

void IsochoricReactor::advance_split(State& state, double rho,
                                     double dt) const {
  const std::size_t ns = mech_.n_species();
  CAT_REQUIRE(state.y.size() == ns, "state size mismatch");
  CAT_REQUIRE(!source_,
              "advance_split: the operator split has no single RHS for a "
              "manufactured source; use advance_coupled");
  const double e_target = energy(state);  // adiabatic: e is invariant
  // Step 1: chemistry with frozen temperature.
  const double t_frozen = state.t;
  std::vector<double>& y = y_scratch_;
  numerics::OdeRhs rhs = [&, rho, t_frozen](double, std::span<const double> u,
                                            std::span<double> dudt) {
    std::copy(u.begin(), u.end(), y.begin());
    gas::Mixture::clean_mass_fractions(y);
    mech_.mass_production_rates(rho, y, t_frozen, t_frozen, dudt, ws_);
    const double inv_rho = 1.0 / rho;
    for (std::size_t s = 0; s < ns; ++s) dudt[s] *= inv_rho;
  };
  u_scratch_.resize(ns);  // cat-lint: allow-alloc (no-op after 1st call)
  std::copy(state.y.begin(), state.y.end(), u_scratch_.begin());
  numerics::StiffIntegrator integ(rhs, nullptr, stiff_opt_);
  integ.integrate(0.0, dt, std::span<double>(u_scratch_), stiff_);
  std::copy(u_scratch_.begin(), u_scratch_.end(), state.y.begin());
  gas::Mixture::clean_mass_fractions(state.y);
  // Step 2: recover temperature from the (conserved) energy.
  state.t = mech_.mixture().temperature_from_energy(state.y, e_target,
                                                    state.t);
}

// cat-lint: allow-alloc (one-time construction: per-species tables)
TwoTemperatureReactor::TwoTemperatureReactor(const Mechanism& mech)
    : mech_(mech), ttg_(mech.species_set()) {
  const std::size_t ns = mech_.n_species();
  h_const_.reserve(ns);
  inv_m_.reserve(ns);
  etr_coeff_.reserve(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    const gas::Species& sp = mech_.species_set().species(s);
    h_const_.push_back(sp.h_formation_298 -
                       gas::reference_thermal_enthalpy(sp));
    inv_m_.push_back(1.0 / sp.molar_mass);
    double coeff = 1.5 * kRu;
    if (sp.rotor == gas::RotorType::kLinear) coeff += kRu;
    if (sp.rotor == gas::RotorType::kNonlinear) coeff += 1.5 * kRu;
    etr_coeff_.push_back(coeff);
    is_electron_.push_back(sp.is_electron() ? 1 : 0);
  }
  y_scratch_.resize(ns);
  wdot_scratch_.resize(ns);
  x_scratch_.resize(ns);
}

void TwoTemperatureReactor::advance(State& state, double rho,
                                    double dt) const {
  const std::size_t ns = mech_.n_species();
  CAT_REQUIRE(state.y.size() == ns, "state size mismatch");
  // Unknowns: [y_s..., T, Tv]. Total energy conservation closes T; the
  // vibronic pool evolves by Landau-Teller exchange plus the vibronic
  // energy carried by created/destroyed molecules. All temporaries are
  // persistent scratch: zero heap allocations per RHS evaluation.
  std::vector<double>& y = y_scratch_;
  std::vector<double>& wdot = wdot_scratch_;
  numerics::OdeRhs rhs = [&, rho](double t_now, std::span<const double> u,
                                  std::span<double> dudt) {
    std::copy(u.begin(), u.begin() + ns, y.begin());
    gas::Mixture::clean_mass_fractions(y);
    const double t = std::clamp(u[ns], 200.0, 80000.0);
    const double tv = std::clamp(u[ns + 1], 200.0, 80000.0);
    mech_.mass_production_rates(rho, y, t, tv, wdot, ws_);
    const double p = ttg_.pressure(rho, y, t, tv);
    const double q_lt = ttg_.landau_teller_source(rho, y, t, tv, p,
                                                  x_scratch_);
    // Reuse the molar rates the mass-rate kernel just computed instead of
    // re-running it for the vibronic source.
    const double q_chem =
        mech_.vibronic_source_from_rates(ws_.wdot_mole, tv, ws_);

    const double inv_rho = 1.0 / rho;
    for (std::size_t s = 0; s < ns; ++s) dudt[s] = wdot[s] * inv_rho;

    // d(ev)/dt per unit mass:
    const double dev_dt = (q_lt + q_chem) * inv_rho;
    const double cv_v = std::max(ttg_.vibronic_cv(y, tv), 1e-6);
    // Subtract composition change contribution to ev at fixed Tv. The
    // per-species vibronic energies at tv are cached in ws_.vib_e by the
    // vibronic-source call above.
    double dev_comp = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const double evs = is_electron_[s] ? 1.5 * kRu * tv * inv_m_[s]
                                         : ws_.vib_e[s] * inv_m_[s];
      dev_comp += evs * dudt[s];
    }
    dudt[ns + 1] = (dev_dt - dev_comp) / cv_v;

    // Total energy conservation: de/dt = 0 with
    // e = sum y_s e_s(T, Tv):  cv_tr dT/dt = -sum e_s dy_s/dt - cv_v dTv/dt
    double esum = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const double e_mole = is_electron_[s]
                                ? h_const_[s] + 1.5 * kRu * tv
                                : h_const_[s] + etr_coeff_[s] * t + ws_.vib_e[s];
      esum += e_mole * inv_m_[s] * dudt[s];
    }
    const double cv_tr = std::max(ttg_.trans_rot_cv(y), 1e-6);
    dudt[ns] = (-esum - cv_v * dudt[ns + 1]) / cv_tr;
    if (source_) source_(t_now, u, dudt);
  };

  u_scratch_.resize(ns + 2);  // cat-lint: allow-alloc (no-op after 1st call)
  std::copy(state.y.begin(), state.y.end(), u_scratch_.begin());
  u_scratch_[ns] = state.t;
  u_scratch_[ns + 1] = state.tv;
  numerics::StiffIntegrator integ(rhs, nullptr, stiff_opt_);
  integ.integrate(0.0, dt, std::span<double>(u_scratch_), stiff_);
  std::copy(u_scratch_.begin(), u_scratch_.begin() + ns, state.y.begin());
  gas::Mixture::clean_mass_fractions(state.y);
  state.t = u_scratch_[ns];
  state.tv = u_scratch_[ns + 1];
}

}  // namespace cat::chemistry
