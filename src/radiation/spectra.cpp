#include "radiation/spectra.hpp"

#include <cmath>

#include "core/error.hpp"
#include "radiation/tangent_slab.hpp"

namespace cat::radiation {

Spectrum slab_radiance(const RadiationModel& model,
                       const gas::SpeciesSet& set, const SpectralGrid& grid,
                       std::span<const double> nd, double t, double tv,
                       double depth) {
  CAT_REQUIRE(depth > 0.0, "slab depth must be positive");
  (void)set;
  SlabLayer layer;
  layer.thickness = depth;
  layer.j.resize(grid.size());
  layer.kappa.resize(grid.size());
  model.emission(nd, t, tv, grid, layer.j);
  model.absorption(layer.j, tv, grid, layer.kappa);
  const SlabResult slab = solve_tangent_slab(grid, {&layer, 1});

  Spectrum out;
  out.lambda.assign(grid.wavelengths().begin(), grid.wavelengths().end());
  out.intensity = slab.i_normal;
  return out;
}

Spectrum synthetic_measured_spectrum(const RadiationModel& model,
                                     const gas::SpeciesSet& set,
                                     const SpectralGrid& grid,
                                     std::span<const double> nd_eq,
                                     double t_eq, double depth,
                                     double noise_amplitude) {
  Spectrum s = slab_radiance(model, set, grid, nd_eq, t_eq, t_eq, depth);
  // Deterministic pseudo-noise: incommensurate sinusoids in bin index give
  // the jitter of a digitized instrument trace without an RNG.
  for (std::size_t k = 0; k < s.intensity.size(); ++k) {
    const double kk = static_cast<double>(k);
    const double wiggle = 0.6 * std::sin(12.9898 * kk) +
                          0.4 * std::sin(78.233 * kk + 1.3);
    s.intensity[k] *= 1.0 + noise_amplitude * wiggle;
    if (s.intensity[k] < 0.0) s.intensity[k] = 0.0;
  }
  return s;
}

double spectral_correlation(const Spectrum& a, const Spectrum& b,
                            double floor) {
  CAT_REQUIRE(a.intensity.size() == b.intensity.size(),
              "spectra must share a grid");
  // Pearson correlation of log intensities over mutually lit bins.
  std::vector<double> la, lb;
  for (std::size_t k = 0; k < a.intensity.size(); ++k) {
    if (a.intensity[k] > floor && b.intensity[k] > floor) {
      la.push_back(std::log(a.intensity[k]));
      lb.push_back(std::log(b.intensity[k]));
    }
  }
  if (la.size() < 3) return 0.0;
  const double n = static_cast<double>(la.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < la.size(); ++i) {
    ma += la[i];
    mb += lb[i];
  }
  ma /= n;
  mb /= n;
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < la.size(); ++i) {
    sab += (la[i] - ma) * (lb[i] - mb);
    saa += (la[i] - ma) * (la[i] - ma);
    sbb += (lb[i] - mb) * (lb[i] - mb);
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace cat::radiation
