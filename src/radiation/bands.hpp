#pragma once
/// \file bands.hpp
/// Smeared-band spectral emission/absorption model (NEQAIR-class physics
/// at band-model resolution).
///
/// Radiating systems are modeled as electronic band systems with an upper
/// state (g_u, theta_u) populated by a Boltzmann distribution at the
/// excitation temperature (Tv in the two-temperature model — electronic
/// excitation rides the vibronic pool), an effective Einstein coefficient,
/// and a triangular spectral envelope (atomic lines use narrow Gaussians,
/// which at instrument resolution is what shock-tube spectra such as the
/// paper's Fig. 8 show). Absorption follows from Kirchhoff's law at the
/// excitation temperature, which the tangent-slab solver needs for
/// self-absorbed layers.

#include <span>
#include <string>
#include <vector>

#include "gas/species.hpp"

namespace cat::radiation {

/// Uniform wavelength grid [m].
class SpectralGrid {
 public:
  SpectralGrid(double lambda_min, double lambda_max, std::size_t n_bins);

  std::size_t size() const { return lambda_.size(); }
  double lambda(std::size_t k) const { return lambda_[k]; }
  double d_lambda() const { return dl_; }
  std::span<const double> wavelengths() const { return lambda_; }

 private:
  std::vector<double> lambda_;
  double dl_;
};

/// One radiating band system or atomic multiplet.
struct BandSystem {
  std::string name;
  std::string species;      ///< emitting species (database name)
  double g_u;               ///< upper-state degeneracy
  double theta_u;           ///< upper-state excitation temperature [K]
  double einstein_a;        ///< effective transition probability [1/s]
  double lambda_peak;       ///< [m]
  double lambda_min, lambda_max;  ///< envelope support [m]
  bool atomic_line = false; ///< Gaussian line instead of triangular band
  double line_width = 2.0e-9;     ///< Gaussian sigma for lines [m]
};

/// Planck function B_lambda(T) [W/(m^2 sr m)].
double planck(double lambda, double t);

/// Band-model radiation evaluator bound to a species set.
class RadiationModel {
 public:
  /// Build with the standard CAT radiator inventory restricted to species
  /// present in \p set (air radiators, CN/C2 for Titan, continuum).
  explicit RadiationModel(const gas::SpeciesSet& set);

  std::span<const BandSystem> systems() const { return systems_; }

  /// Spectral emission coefficient j_lambda [W/(m^3 sr m)] for the state
  /// given by species number densities nd [1/m^3], heavy temperature t and
  /// excitation (vibronic/electron) temperature tv. Adds free-free /
  /// free-bound continuum when electrons are present.
  void emission(std::span<const double> nd, double t, double tv,
                const SpectralGrid& grid, std::span<double> j) const;

  /// Spectral absorption coefficient kappa_lambda [1/m] by Kirchhoff at the
  /// excitation temperature: kappa = j / B(tv).
  void absorption(std::span<const double> j, double tv,
                  const SpectralGrid& grid, std::span<double> kappa) const;

  /// Total volumetric emission [W/m^3] = 4 pi integral of j over lambda.
  double total_emission(std::span<const double> nd, double t, double tv,
                        const SpectralGrid& grid) const;

 private:
  std::vector<BandSystem> systems_;
  std::vector<std::size_t> system_species_;  ///< local index per system
  std::ptrdiff_t electron_index_;
  const gas::SpeciesSet* set_;

  /// Electronic partition function of a species at tv.
  static double q_electronic(const gas::Species& s, double tv);
};

}  // namespace cat::radiation
