#pragma once
/// \file tangent_slab.hpp
/// Plane-parallel ("tangent slab") radiative transport.
///
/// The paper lists "detailed spectral radiation transport (employing a
/// plane-slab approximation)" among the VSL codes' capabilities; this is
/// that approximation. The shock layer is treated as a 1-D slab of
/// emitting/absorbing cells between the wall (z = 0) and the shock
/// (z = L); the wall-directed spectral flux follows from the formal
/// solution with exponential-integral angular moments:
///   q_lambda(0) = 2 pi  \int_0^{tau_L} S_lambda(t) E_2(t) dt
/// with source function S = j/kappa, reducing to the optically thin limit
/// 2 pi \int j dz when kappa -> 0.

#include <span>
#include <vector>

#include "radiation/bands.hpp"

namespace cat::radiation {

/// One homogeneous layer of the slab, ordered wall -> shock.
struct SlabLayer {
  double thickness;              ///< [m]
  std::vector<double> j;         ///< emission [W/(m^3 sr m)] per bin
  std::vector<double> kappa;     ///< absorption [1/m] per bin
};

/// Result of a slab integration.
struct SlabResult {
  double q_wall;                  ///< wall-directed total flux [W/m^2]
  std::vector<double> q_lambda;   ///< spectral flux [W/(m^2 m)]
  std::vector<double> i_normal;   ///< normal-ray radiance [W/(m^2 sr m)]
};

/// Integrate the slab. \p grid must match the layer spectra.
SlabResult solve_tangent_slab(const SpectralGrid& grid,
                              std::span<const SlabLayer> layers);

/// Optically thin shortcut: q = 2 pi sum_k sum_z j dz dlambda.
double optically_thin_wall_flux(const SpectralGrid& grid,
                                std::span<const SlabLayer> layers);

}  // namespace cat::radiation
