#include "radiation/bands.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "gas/constants.hpp"

namespace cat::radiation {

using gas::constants::kBoltzmann;
using gas::constants::kPlanck;
using gas::constants::kSpeedOfLight;

SpectralGrid::SpectralGrid(double lambda_min, double lambda_max,
                           std::size_t n_bins) {
  CAT_REQUIRE(lambda_min > 0.0 && lambda_max > lambda_min, "bad lambda range");
  CAT_REQUIRE(n_bins >= 2, "need at least two bins");
  lambda_.resize(n_bins);
  dl_ = (lambda_max - lambda_min) / static_cast<double>(n_bins - 1);
  for (std::size_t k = 0; k < n_bins; ++k)
    lambda_[k] = lambda_min + dl_ * static_cast<double>(k);
}

double planck(double lambda, double t) {
  CAT_REQUIRE(lambda > 0.0 && t > 0.0, "bad Planck arguments");
  const double hc = kPlanck * kSpeedOfLight;
  const double x = hc / (lambda * kBoltzmann * t);
  if (x > 700.0) return 0.0;
  return 2.0 * kPlanck * kSpeedOfLight * kSpeedOfLight /
         std::pow(lambda, 5) / (std::exp(x) - 1.0);
}

namespace {

/// The standard radiator inventory. Effective Einstein coefficients and
/// upper-state data follow the usual air/Titan radiation literature
/// (NEQAIR-class band systems); envelopes are smeared to instrument
/// resolution, which is the comparison level of the paper's Fig. 8.
std::vector<BandSystem> standard_systems() {
  std::vector<BandSystem> v;
  // --- molecular band systems, air ---
  v.push_back({"N2+(1-)", "N2+", 2.0, 36786.0, 1.6e7, 391.4e-9, 300.0e-9,
               590.0e-9, false, 0.0});
  v.push_back({"N2(2+)", "N2", 6.0, 127700.0, 2.7e7, 337.1e-9, 280.0e-9,
               500.0e-9, false, 0.0});
  v.push_back({"N2(1+)", "N2", 6.0, 85779.0, 1.5e5, 700.0e-9, 500.0e-9,
               1100.0e-9, false, 0.0});
  v.push_back({"NO-beta", "NO", 4.0, 66000.0, 4.0e6, 280.0e-9, 200.0e-9,
               380.0e-9, false, 0.0});
  v.push_back({"NO-gamma", "NO", 2.0, 63270.0, 5.0e6, 250.0e-9, 210.0e-9,
               300.0e-9, false, 0.0});
  // --- molecular band systems, Titan (CN dominates Titan entry heating) ---
  v.push_back({"CN-violet", "CN", 2.0, 37060.0, 1.5e7, 388.3e-9, 340.0e-9,
               440.0e-9, false, 0.0});
  v.push_back({"CN-red", "CN", 4.0, 13296.0, 7.0e5, 780.0e-9, 500.0e-9,
               1100.0e-9, false, 0.0});
  v.push_back({"C2-swan", "C2", 6.0, 28807.0, 7.0e6, 516.5e-9, 430.0e-9,
               670.0e-9, false, 0.0});
  // --- atomic multiplets ---
  v.push_back({"N-lines-820", "N", 12.0, 139000.0, 2.6e7, 821.6e-9,
               810.0e-9, 832.0e-9, true, 3.0e-9});
  v.push_back({"N-lines-746", "N", 12.0, 139000.0, 1.9e7, 746.8e-9,
               738.0e-9, 756.0e-9, true, 3.0e-9});
  v.push_back({"O-777", "O", 15.0, 124600.0, 3.7e7, 777.3e-9, 770.0e-9,
               785.0e-9, true, 3.0e-9});
  v.push_back({"O-845", "O", 9.0, 126200.0, 3.2e7, 844.6e-9, 838.0e-9,
               852.0e-9, true, 3.0e-9});
  // --- H alpha/beta for Titan mixtures ---
  v.push_back({"H-alpha", "H", 18.0, 140270.0, 4.4e7, 656.3e-9, 650.0e-9,
               663.0e-9, true, 3.0e-9});
  return v;
}

/// Normalized triangular envelope on [lmin, lmax] peaking at lpeak.
double triangle_shape(double lambda, double lmin, double lpeak, double lmax) {
  if (lambda <= lmin || lambda >= lmax) return 0.0;
  const double h = 2.0 / (lmax - lmin);  // unit area
  if (lambda < lpeak) return h * (lambda - lmin) / (lpeak - lmin);
  return h * (lmax - lambda) / (lmax - lpeak);
}

/// Normalized Gaussian.
double gaussian_shape(double lambda, double center, double sigma) {
  const double z = (lambda - center) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * M_PI));
}

}  // namespace

double RadiationModel::q_electronic(const gas::Species& s, double tv) {
  double q = 0.0;
  for (const auto& lvl : s.electronic) {
    const double x = lvl.theta / tv;
    if (x < 500.0) q += lvl.g * std::exp(-x);
  }
  return std::max(q, static_cast<double>(s.electronic.front().g));
}

RadiationModel::RadiationModel(const gas::SpeciesSet& set)
    : electron_index_(-1), set_(&set) {
  for (const auto& sys : standard_systems()) {
    if (set.contains(sys.species)) {
      systems_.push_back(sys);
      system_species_.push_back(set.local_index(sys.species));
    }
  }
  for (std::size_t s = 0; s < set.size(); ++s)
    if (set.species(s).is_electron())
      electron_index_ = static_cast<std::ptrdiff_t>(s);
}

void RadiationModel::emission(std::span<const double> nd, double t, double tv,
                              const SpectralGrid& grid,
                              std::span<double> j) const {
  CAT_REQUIRE(nd.size() == set_->size(), "density vector size mismatch");
  CAT_REQUIRE(j.size() == grid.size(), "spectrum size mismatch");
  CAT_REQUIRE(t > 0.0 && tv > 0.0, "temperatures must be positive");
  std::fill(j.begin(), j.end(), 0.0);
  const double hc = kPlanck * kSpeedOfLight;

  for (std::size_t b = 0; b < systems_.size(); ++b) {
    const BandSystem& sys = systems_[b];
    const double n_s = nd[system_species_[b]];
    if (n_s <= 0.0) continue;
    const gas::Species& sp = set_->species(system_species_[b]);
    const double x = sys.theta_u / tv;
    if (x > 300.0) continue;
    // Boltzmann upper-state population at the excitation temperature.
    const double n_u = n_s * sys.g_u * std::exp(-x) / q_electronic(sp, tv);
    const double power = n_u * sys.einstein_a * hc / sys.lambda_peak /
                         (4.0 * M_PI);  // [W/(m^3 sr)]
    for (std::size_t k = 0; k < grid.size(); ++k) {
      const double shape =
          sys.atomic_line
              ? gaussian_shape(grid.lambda(k), sys.lambda_peak,
                               sys.line_width)
              : triangle_shape(grid.lambda(k), sys.lambda_min,
                               sys.lambda_peak, sys.lambda_max);
      j[k] += power * shape;
    }
  }

  // Hydrogenic free-free + free-bound continuum when ionized: Kramers form
  //   j_lambda = C n_e n_ion / (lambda^2 sqrt(T)) exp(-hc/(lambda k Te))
  if (electron_index_ >= 0 && nd[electron_index_] > 0.0) {
    const double n_e = nd[electron_index_];
    double n_ion = 0.0;
    for (std::size_t s = 0; s < set_->size(); ++s)
      if (set_->species(s).charge > 0) n_ion += nd[s];
    constexpr double kKramers = 5.44e-52;  // [W m^4 sr^-1 K^0.5]
    const double pref = kKramers * n_e * n_ion / std::sqrt(tv);
    for (std::size_t k = 0; k < grid.size(); ++k) {
      const double lam = grid.lambda(k);
      const double xx = hc / (lam * kBoltzmann * tv);
      if (xx > 300.0) continue;
      j[k] += pref / (lam * lam) * std::exp(-xx);
    }
  }
}

void RadiationModel::absorption(std::span<const double> j, double tv,
                                const SpectralGrid& grid,
                                std::span<double> kappa) const {
  CAT_REQUIRE(j.size() == grid.size() && kappa.size() == grid.size(),
              "spectrum size mismatch");
  for (std::size_t k = 0; k < grid.size(); ++k) {
    const double b = planck(grid.lambda(k), tv);
    kappa[k] = b > 1e-30 ? j[k] / b : 0.0;
  }
}

double RadiationModel::total_emission(std::span<const double> nd, double t,
                                      double tv,
                                      const SpectralGrid& grid) const {
  std::vector<double> j(grid.size());
  emission(nd, t, tv, grid, j);
  double acc = 0.0;
  for (std::size_t k = 0; k < grid.size(); ++k) acc += j[k];
  return 4.0 * M_PI * acc * grid.d_lambda();
}

}  // namespace cat::radiation
