#include "radiation/tangent_slab.hpp"

#include <cmath>

#include "core/error.hpp"
#include "numerics/quadrature.hpp"

namespace cat::radiation {

using numerics::expint_en;

SlabResult solve_tangent_slab(const SpectralGrid& grid,
                              std::span<const SlabLayer> layers) {
  CAT_REQUIRE(!layers.empty(), "empty slab");
  const std::size_t nb = grid.size();
  for (const auto& layer : layers) {
    CAT_REQUIRE(layer.j.size() == nb && layer.kappa.size() == nb,
                "layer spectrum size mismatch");
    CAT_REQUIRE(layer.thickness > 0.0, "non-positive layer thickness");
  }

  SlabResult out;
  out.q_lambda.assign(nb, 0.0);
  out.i_normal.assign(nb, 0.0);

  // Per wavelength bin: march from the wall outward accumulating optical
  // depth. Each homogeneous layer contributes its formal-solution integral
  // exactly: with source function S = j/kappa,
  //   flux moment:  2 pi S [E3(tau_in) - E3(tau_out)]   (dE3/dt = -E2)
  //   normal ray:       S [exp(-tau_in) - exp(-tau_out)]
  // and the optically thin limit (kappa -> 0) reduces to j dz weighting.
#ifdef CATAERO_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(nb); ++k) {
    double tau = 0.0;
    double q = 0.0, inorm = 0.0;
    for (const auto& layer : layers) {
      const double dtau = layer.kappa[k] * layer.thickness;
      if (dtau > 1e-6) {
        const double s_fn = layer.j[k] / layer.kappa[k];
        const double tau_out = tau + dtau;
        q += 2.0 * M_PI * s_fn *
             (expint_en(3, tau) - expint_en(3, tau_out));
        inorm += s_fn * (std::exp(-std::min(tau, 700.0)) -
                         std::exp(-std::min(tau_out, 700.0)));
      } else {
        // Optically thin layer: first-order in dtau, exact as kappa -> 0.
        const double tau_mid = tau + 0.5 * dtau;
        q += 2.0 * M_PI * layer.j[k] * expint_en(2, tau_mid) *
             layer.thickness;
        inorm += layer.j[k] * std::exp(-tau_mid) * layer.thickness;
      }
      tau += dtau;
    }
    out.q_lambda[k] = q;
    out.i_normal[k] = inorm;
  }

  double total = 0.0;
  for (double q : out.q_lambda) total += q;
  out.q_wall = total * grid.d_lambda();
  return out;
}

double optically_thin_wall_flux(const SpectralGrid& grid,
                                std::span<const SlabLayer> layers) {
  double total = 0.0;
  for (const auto& layer : layers) {
    double acc = 0.0;
    for (double j : layer.j) acc += j;
    total += 2.0 * M_PI * acc * layer.thickness;
  }
  return total * grid.d_lambda();
}

}  // namespace cat::radiation
