#pragma once
/// \file spectra.hpp
/// Spectral post-processing for the Fig. 8 experiment: nonequilibrium
/// emission spectra behind a strong shock, compared against a "measured"
/// reference spectrum.
///
/// Substitution note (DESIGN.md): the paper's measured spectrum is an AVCO
/// shock-tube trace we do not have. The reference here is the same band
/// model evaluated at the *equilibrium* post-shock endpoint with
/// deterministic pseudo-noise — it plays the same role (a near-equilibrium
/// benchmark for the nonequilibrium prediction) and keeps every spectral
/// feature position identical to the model's, which is what the figure
/// compares.

#include <vector>

#include "radiation/bands.hpp"

namespace cat::radiation {

/// A sampled spectrum.
struct Spectrum {
  std::vector<double> lambda;     ///< [m]
  std::vector<double> intensity;  ///< [W/(m^2 sr m)] normal-ray radiance
};

/// Normal-ray radiance through a homogeneous slab of thickness \p depth
/// at the given state (number densities, T, Tv).
Spectrum slab_radiance(const RadiationModel& model,
                       const gas::SpeciesSet& set, const SpectralGrid& grid,
                       std::span<const double> nd, double t, double tv,
                       double depth);

/// Synthetic "measured" spectrum: radiance of the equilibrium endpoint
/// state with reproducible multiplicative pseudo-noise (deterministic; no
/// RNG) of the given relative amplitude.
Spectrum synthetic_measured_spectrum(const RadiationModel& model,
                                     const gas::SpeciesSet& set,
                                     const SpectralGrid& grid,
                                     std::span<const double> nd_eq,
                                     double t_eq, double depth,
                                     double noise_amplitude = 0.15);

/// Scalar comparison metric between two spectra on the same grid:
/// correlation of log-intensities over bins where both exceed a floor.
double spectral_correlation(const Spectrum& a, const Spectrum& b,
                            double floor = 1e-3);

}  // namespace cat::radiation
