#pragma once
/// \file convergence.hpp
/// Grid-convergence machinery: discrete error norms, observed order of
/// accuracy, Richardson extrapolation, and the ConvergenceStudy driver
/// that runs a solver over a refinement ladder and decides pass/fail
/// against its design order.
///
/// Two study modes:
///  - kOrder (MMS): every level knows its exact error norms (manufactured
///    solution available); observed order comes from consecutive level
///    pairs, p = ln(e_coarse/e_fine) / ln(h_coarse/h_fine), and the gate
///    asserts |p - design| <= tolerance on the finest pairs.
///  - kExactness: a single resolution must reproduce a known solution to
///    an absolute tolerance (manufactured-forcing cancellation checks).
///  - kReport: solution verification without an exact solution (scenario
///    ladders); observed order from Richardson triplets of a scalar
///    functional, reported but not gated.
///  - kFunctionalOrder: like kReport (self-convergence of a scalar
///    functional, no exact solution needed) but GATED — the observed
///    order of the finest gate_pairs triplets must sit within tolerance
///    of the design order. Used where an exact solution is impractical
///    (the equilibrium-gas E+BL dxi ladder) but the order still matters.

#include <functional>
#include <string>
#include <vector>

#include "io/table.hpp"

namespace cat::verify {

/// Discrete error norms against the exact manufactured solution.
struct ErrorNorms {
  double l1 = 0.0, l2 = 0.0, linf = 0.0;
};

/// Weighted norm accumulator (weights are cell volumes / node spacings so
/// the norms are discrete integral norms, comparable across grids).
class NormAccumulator {
 public:
  void add(double error, double weight = 1.0);
  ErrorNorms finalize() const;

 private:
  double sum_w_ = 0.0, sum_1_ = 0.0, sum_2_ = 0.0, max_ = 0.0;
};

/// One rung of the refinement ladder.
struct LevelResult {
  double h = 0.0;          ///< representative spacing (or time step)
  std::size_t n = 0;       ///< resolution (cells / nodes / steps)
  ErrorNorms error;        ///< exact-error norms (kOrder, kExactness)
  double functional = 0.0; ///< scalar output (kReport mode)
  double cost_seconds = 0.0;
};

/// Observed order between two consecutive levels, per norm.
struct ObservedOrder {
  double l1 = 0.0, l2 = 0.0, linf = 0.0;
};

enum class StudyKind { kOrder, kExactness, kReport, kFunctionalOrder };

struct StudyConfig {
  std::string name;
  std::string title;
  std::string quantity;         ///< what the error/functional measures
  StudyKind kind = StudyKind::kOrder;
  double design_order = 2.0;
  double tolerance = 0.25;      ///< p >= design - tolerance gate (kOrder)
  std::size_t gate_pairs = 2;   ///< finest level pairs the gate checks
  double exact_tolerance = 0.0; ///< L_inf gate (kExactness)
  /// Upper half of the order band: p <= design + upper_tolerance. Negative
  /// (the default) keeps the band symmetric (uses `tolerance`). Studies on
  /// smooth mapped grids set this wider: limited-MUSCL reconstructions
  /// superconverge benignly there (error-cancellation between the mapping
  /// and the limiter), and the gate's job is to catch *degradation* of the
  /// design order, not to outlaw doing better than it.
  double upper_tolerance = -1.0;

  /// The resolved upper half-band (the single place the sentinel rule
  /// lives; the driver, the cat_verify JSON artifact and the tests all
  /// read it from here).
  double upper_band() const {
    return upper_tolerance >= 0.0 ? upper_tolerance : tolerance;
  }
};

struct StudyResult {
  StudyConfig config;
  std::vector<LevelResult> levels;
  /// kOrder: orders[k] compares levels[k] and levels[k+1] (size n-1).
  /// kReport / kFunctionalOrder: orders[k] from the functional triplet
  /// (k, k+1, k+2) (size n-2).
  std::vector<ObservedOrder> orders;
  double richardson = 0.0;  ///< extrapolated functional (kReport)
  bool passed = false;
  std::string detail;       ///< human-readable gate outcome

  /// Order table for CSV/JSON artifacts: one row per level with h, n,
  /// norms/functional and the observed order closing at that level.
  io::Table order_table() const;
};

/// Run one level of a study; fill everything except cost (timed by the
/// driver).
using LevelRunner = std::function<LevelResult(std::size_t level)>;

/// Execute \p n_levels rungs and evaluate the gate. kOrder gates the L2
/// observed order of the finest `gate_pairs` pairs (L1 and Linf are
/// reported); kExactness gates levels[0].error.linf; kReport always
/// passes.
StudyResult run_convergence_study(const StudyConfig& cfg,
                                  std::size_t n_levels,
                                  const LevelRunner& runner);

/// p = ln(e_c/e_f) / ln(h_c/h_f); 0 when degenerate.
double observed_order(double e_coarse, double e_fine, double h_coarse,
                      double h_fine);

}  // namespace cat::verify
