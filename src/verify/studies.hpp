#pragma once
/// \file studies.hpp
/// The named verification catalog: each study wires a manufactured
/// solution (mms.hpp) through a solver's SourceHook, runs a refinement
/// ladder via the ConvergenceStudy driver (convergence.hpp) and gates the
/// observed order of accuracy against the discretization's design order.
///
/// These studies are the repo's permanent correctness gate: ctest runs
/// them (tests/test_verify.cpp), the cat_verify CLI emits their order
/// tables as CSV/JSON artifacts, and CI re-checks the JSON with
/// scripts/check_orders.py — a solver refactor that silently degrades an
/// interior scheme from second to first order fails all three.

#include <string_view>
#include <vector>

#include "verify/convergence.hpp"

namespace cat::verify {

struct StudyOptions {
  /// Ladder length override; 0 keeps the study's default. Extra levels
  /// refine further (each study doubles resolution per level).
  std::size_t levels = 0;
};

/// Every registered study (name/title/kind/design order, no results).
std::vector<StudyConfig> study_catalog();

/// Run one study by name; throws std::invalid_argument for unknown names.
StudyResult run_study(std::string_view name, const StudyOptions& opt = {});

/// Run the whole catalog in registration order.
std::vector<StudyResult> run_all_studies(const StudyOptions& opt = {});

}  // namespace cat::verify
