#include "verify/studies.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "chemistry/source.hpp"
#include "core/error.hpp"
#include "core/gas_model.hpp"
#include "gas/species.hpp"
#include "grid/grid.hpp"
#include "numerics/ode.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/surrogate.hpp"
#include "solvers/correlations/correlations.hpp"
#include "solvers/euler/euler.hpp"
#include "solvers/relax1d/relax1d.hpp"
#include "verify/mms.hpp"

namespace cat::verify {
namespace {

// ---------------------------------------------------------------------------
// Finite-volume MMS ladders (Euler / thin-layer NS).
// ---------------------------------------------------------------------------

/// Grid families for the FV ladders. All are smooth mappings of the unit
/// square scaled to the domain extent, so second-order convergence is the
/// correct expectation on every one of them:
///  - kCartesian: the uniform grid of the original PR 4 studies;
///  - kSkewed: sinusoidal interior distortion of BOTH coordinates (cell
///    faces tilt against the flow — the full curvilinear metric path);
///  - kStretched: smooth non-uniform tensor-product stretching that keeps
///    j-faces y-aligned, matching the thin-layer viscous model whose
///    fluxes are wall-normal by construction (a skewed grid would change
///    the continuum operator the NS discretization approximates, not just
///    its order).
enum class FvGrid { kCartesian, kSkewed, kStretched };

grid::StructuredGrid make_fv_grid(FvGrid shape, std::size_t n,
                                  double extent) {
  grid::StructuredGrid g(n, n);
  for (std::size_t i = 0; i <= n; ++i) {
    for (std::size_t j = 0; j <= n; ++j) {
      const double u = static_cast<double>(i) / static_cast<double>(n);
      const double v = static_cast<double>(j) / static_cast<double>(n);
      double x = u, y = v;
      switch (shape) {
        case FvGrid::kCartesian:
          break;
        case FvGrid::kSkewed: {
          // Interior sinusoidal skew (vanishes on the boundary); the
          // amplitudes keep the Jacobian within ~30% of unity while
          // tilting faces against both sweep directions.
          const double bump =
              std::sin(2.0 * M_PI * u) * std::sin(2.0 * M_PI * v);
          x = u + 0.045 * bump;
          y = v + 0.032 * bump;
          break;
        }
        case FvGrid::kStretched:
          // Monotone 1-D stretchings (|c| < 1), different per direction.
          x = u + 0.30 / (2.0 * M_PI) * std::sin(2.0 * M_PI * u);
          y = v - 0.25 / (2.0 * M_PI) * std::sin(2.0 * M_PI * v);
          break;
      }
      g.xn(i, j) = extent * x;
      g.rn(i, j) = extent * y;
    }
  }
  g.compute_metrics(/*axisymmetric=*/false);
  return g;
}

LevelResult run_fv_level(const FvManufactured& field, bool viscous,
                         numerics::Limiter limiter, std::size_t n,
                         FvGrid shape = FvGrid::kCartesian) {
  const double extent = fv_domain_extent(field);
  const grid::StructuredGrid g = make_fv_grid(shape, n, extent);
  auto gas = std::make_shared<core::IdealGasModel>(
      gas::IdealGas(field.gamma, field.r_gas));

  solvers::FvOptions opt;
  opt.cfl = 0.4;
  opt.max_iter = 60000;
  opt.residual_tol = 1e-11;
  opt.limiter = limiter;
  opt.muscl = limiter != numerics::Limiter::kNone;
  opt.startup_iters = 300;
  opt.viscous = viscous;
  opt.prandtl = field.prandtl;
  opt.dirichlet = [&field](double x, double r) {
    return field.primitive(x, r);
  };
  opt.source = [&field, viscous](double x, double r) {
    return viscous ? field.ns_source(x, r) : field.euler_source(x, r);
  };

  solvers::EulerSolver solver(g, gas, opt);
  const double mid = 0.5 * extent;
  solver.initialize({field.rho.v(mid, mid), field.u.v(mid, mid),
                     field.v.v(mid, mid), field.p.v(mid, mid)});
  solver.solve();

  NormAccumulator acc;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double exact =
          field.primitive(g.xc(i, j), g.rc(i, j))[0];
      acc.add((solver.primitive(i, j)[0] - exact) / field.rho.c0,
              g.volume(i, j));
    }
  }
  LevelResult lr;
  lr.h = extent / static_cast<double>(n);
  lr.n = n;
  lr.error = acc.finalize();
  lr.functional = solver.residual();
  return lr;
}

// ---------------------------------------------------------------------------
// Parabolic-march (BL tridiagonal) MMS ladder.
// ---------------------------------------------------------------------------

struct MarchSetup {
  MarchManufactured m{};
  double cp = 1000.0;
  double h_total = 1.2e6;
  double rho_c = 0.05;
  double mu_c = 2.0e-4;
  double ue = 200.0;
  double r_body = 0.5;
  double s0 = 1.0;
  std::size_t n_stations = 4;

  double t_wall() const { return m.g_w * h_total / cp; }
  std::vector<solvers::MarchEdge> edges() const {
    std::vector<solvers::MarchEdge> e(n_stations);
    for (std::size_t i = 0; i < n_stations; ++i) {
      e[i].s = s0 + static_cast<double>(i);
      e[i].r = r_body;
      e[i].p_e = 1000.0;
      e[i].ue = ue;
      e[i].h_e = h_total - 0.5 * ue * ue;
      e[i].rho_e = rho_c;
      e[i].mu_e = mu_c;
      e[i].t_e = e[i].h_e / cp;
      e[i].vigneron_omega = 1.0;
    }
    return e;
  }
  /// The marcher's own xi quadrature is exact here (constant integrand):
  /// xi(s_last) for the q_w reference value.
  double xi_last() const {
    const double f0 = rho_c * mu_c * ue * r_body * r_body;
    return 0.25 * f0 * s0 +
           f0 * static_cast<double>(n_stations - 1);
  }
  double q_wall_exact() const {
    const double metric =
        ue * r_body / std::sqrt(2.0 * xi_last());
    return m.gp(0.0) * h_total * metric * rho_c * mu_c;
  }
};

LevelResult run_march_level(std::size_t n_eta) {
  MarchSetup su;
  const double d_eta = su.m.eta_max / static_cast<double>(n_eta - 1);

  solvers::MarchOptions opt;
  opt.wall_temperature_K = su.t_wall();
  opt.n_eta = n_eta;
  opt.eta_max = su.m.eta_max;
  opt.n_table = 12;
  opt.picard_iters = 400;
  const double s0 = su.s0;
  opt.momentum_source = [m = su.m, s0](double s, double eta) {
    // The marching core pins beta = 0.5 at its first station (axisymmetric
    // stagnation value); downstream beta = 0 for the constant edge state.
    return m.momentum_source(eta, s == s0 ? 0.5 : 0.0);
  };
  opt.energy_source = [m = su.m](double /*s*/, double eta) {
    return m.energy_source(eta);
  };
  std::vector<double> f_last, g_last;
  opt.profile_observer = [&](std::size_t /*station*/, double /*s*/,
                             std::span<const double> f,
                             std::span<const double> g) {
    f_last.assign(f.begin(), f.end());
    g_last.assign(g.begin(), g.end());
  };

  solvers::ParabolicMarcher marcher(
      make_constant_props(su.rho_c, su.mu_c, su.cp), opt);
  const auto out = marcher.march(su.edges(), su.h_total);
  CAT_REQUIRE(f_last.size() == n_eta, "profile observer missed the march");

  NormAccumulator acc;
  for (std::size_t j = 0; j < n_eta; ++j) {
    const double eta = static_cast<double>(j) * d_eta;
    acc.add(f_last[j] - su.m.f_profile(eta), d_eta);
    acc.add(g_last[j] - su.m.g_profile(eta), d_eta);
  }
  LevelResult lr;
  lr.h = d_eta;
  lr.n = n_eta;
  lr.error = acc.finalize();
  // Wall-heating error rides along: q_w uses the one-sided wall gradient,
  // which must keep up with the interior order (it did not, before the
  // second-order gradient fix in the marching core).
  lr.functional = std::fabs(out.back().q_w - su.q_wall_exact());
  return lr;
}

// ---------------------------------------------------------------------------
// Streamwise (dxi) MMS ladders for the parabolic marching core.
// ---------------------------------------------------------------------------

/// One Δξ-ladder level: march the MarchStreamwiseManufactured field over a
/// station ladder that refines the streamwise spacing AND the eta grid
/// together (fixed dη/Δs ratio), so the combined error is
/// C1 Δξ^p_stream + C2 dη² and the streamwise order is what the finest
/// pairs observe — p≈2 for the BDF2 history terms, p≈1 for the forced
/// legacy BDF1 march. omega0/omega1 prescribe the Vigneron fraction
/// omega(s) carried by the edges (1/0 = the pure-VSL path, <1 exercises
/// the PNS splitting beta *= omega).
LevelResult run_march_dxi_level(std::size_t level, std::size_t order,
                                double omega0, double omega1) {
  MarchStreamwiseManufactured m;
  m.u1 = 4.0;  // ue(s) linear: due/dxi and the beta path are live
  m.omega0 = omega0;
  m.omega1 = omega1;

  const std::size_t n_st = 8u << level;
  const std::size_t n_eta = (40u << level) + 1u;
  const double span = m.s_end - m.s0;
  const double ds = span / static_cast<double>(n_st - 1);
  const double d_eta = m.eta_max / static_cast<double>(n_eta - 1);

  // Uniform Δs ladder plus one graded startup station at s0 + Δs²/span:
  // the marcher's first downstream station is necessarily BDF1, and
  // shrinking that single interval ~ Δs² keeps its larger one-point
  // truncation error at the ladder's design order (the variable-step BDF2
  // coefficients absorb the nonuniform spacing exactly).
  std::vector<solvers::MarchEdge> edges;
  edges.reserve(n_st + 1);
  edges.push_back(m.edge(m.s0));
  edges.push_back(m.edge(m.s0 + ds * ds / span));
  for (std::size_t i = 1; i < n_st; ++i)
    edges.push_back(m.edge(m.s0 + ds * static_cast<double>(i)));
  // The study's premise: the manufactured beta never reaches the marcher's
  // clamp window [-0.15, 1], so the clamp is the identity on this ladder.
  for (const auto& e : edges) {
    const double b = m.beta_eff(e.s);
    CAT_REQUIRE(b > -0.1 && b < 0.9, "manufactured beta hits the clamp");
  }

  solvers::MarchOptions opt;
  opt.wall_temperature_K = m.t_wall();
  opt.n_eta = n_eta;
  opt.eta_max = m.eta_max;
  opt.n_table = 12;
  opt.picard_iters = 600;
  opt.streamwise_order = order;
  const double s0 = m.s0;
  opt.momentum_source = [m, s0](double s, double eta) {
    return m.momentum_source(eta, s, /*station0=*/s == s0);
  };
  opt.energy_source = [m, s0](double s, double eta) {
    return m.energy_source(eta, s, /*station0=*/s == s0);
  };
  std::vector<double> f_last, g_last;
  opt.profile_observer = [&](std::size_t /*station*/, double /*s*/,
                             std::span<const double> f,
                             std::span<const double> g) {
    f_last.assign(f.begin(), f.end());
    g_last.assign(g.begin(), g.end());
  };

  solvers::ParabolicMarcher marcher(
      make_constant_props(m.rho_c, m.mu_c, m.cp), opt);
  const auto out = marcher.march(edges, m.h_total);
  CAT_REQUIRE(f_last.size() == n_eta, "profile observer missed the march");

  const double s_last = edges.back().s;
  NormAccumulator acc;
  for (std::size_t j = 0; j < n_eta; ++j) {
    const double eta = static_cast<double>(j) * d_eta;
    acc.add(f_last[j] - m.F(eta, s_last), d_eta);
    acc.add(g_last[j] - m.g(eta, s_last), d_eta);
  }
  LevelResult lr;
  lr.h = ds;
  lr.n = n_st;
  lr.error = acc.finalize();
  lr.functional = std::fabs(out.back().q_w - m.q_wall_exact(s_last));
  return lr;
}

// ---------------------------------------------------------------------------
// E+BL streamwise ladder (scenario layer, gated functional order).
// ---------------------------------------------------------------------------

/// aft_q_w of the orbiter E+BL scenario vs marching-station count. The BL
/// solver is local-similarity, so its only streamwise discretizations are
/// the trapezoidal xi quadrature and the backward difference feeding beta
/// — both second order now, and both evaluated at the FIXED aft station
/// x/L = 0.95, so the functional self-converges at the streamwise design
/// order (no exact solution exists for the equilibrium-gas pipeline;
/// kFunctionalOrder gates the Richardson-triplet order instead).
LevelResult run_ebl_dxi_level(std::size_t n_stations) {
  const scenario::Case* base = scenario::find_scenario("orbiter_windward_ebl");
  CAT_REQUIRE(base != nullptr, "registry lost orbiter_windward_ebl");
  scenario::Case c = *base;
  c.fidelity = scenario::Fidelity::kSmoke;
  c.n_stations = n_stations;
  const auto result = scenario::run_case(c);

  LevelResult lr;
  lr.h = 1.0 / static_cast<double>(n_stations);
  lr.n = n_stations;
  lr.functional = result.metric("aft_q_w");
  return lr;
}

// ---------------------------------------------------------------------------
// Surrogate-tier refinement ladder (analytic truth, multilinear p = 2).
// ---------------------------------------------------------------------------

/// Analytic stand-in for the high-fidelity hierarchy: an exponential
/// atmosphere feeding the Detra-Kemp-Riddell correlation. Smooth in both
/// flight variables, so the table's multilinear interpolant must converge
/// at its design order 2 as the grid refines — this isolates the
/// surrogate machinery (doubled-grid sampling, node layout, query path)
/// from solver noise.
std::array<double, 4> surrogate_truth(double velocity_mps,
                                      double altitude_m) {
  namespace corr = solvers::correlations;
  corr::CorrelationConditions cc;
  cc.velocity_mps = velocity_mps;
  cc.rho_inf_kg_m3 = 1.225 * std::exp(-altitude_m / 7200.0);
  cc.t_inf_K = 240.0;
  cc.p_inf_Pa = cc.rho_inf_kg_m3 * 287.053 * cc.t_inf_K;
  cc.nose_radius_m = 0.3;
  cc.wall_temperature_K = 1000.0;
  const double q = corr::detra_kemp_riddell_heating(cc);
  return {q, 0.0, cc.t_inf_K, cc.p_inf_Pa};
}

LevelResult run_surrogate_level(std::size_t n) {
  scenario::SurrogateMeta meta;
  meta.base_case = "surrogate_refinement_analytic";
  meta.nose_radius_m = 0.3;
  meta.wall_temperature_K = 1000.0;
  scenario::SurrogateDomain domain;
  domain.velocity_min_mps = 3000.0;
  domain.velocity_max_mps = 7500.0;
  domain.n_velocity = n;
  domain.altitude_min_m = 45000.0;
  domain.altitude_max_m = 75000.0;
  domain.n_altitude = n;
  const auto table =
      scenario::build_surrogate(meta, domain, surrogate_truth, {});

  // Level-independent dense sampling: the same 41x41 probe states on
  // every ladder rung, relative error per state (q_conv spans ~3 decades
  // across the domain, an absolute norm would only see the hot corner).
  constexpr std::size_t kProbe = 41;
  NormAccumulator acc;
  for (std::size_t i = 0; i < kProbe; ++i) {
    for (std::size_t j = 0; j < kProbe; ++j) {
      const double v =
          domain.velocity_min_mps +
          (domain.velocity_max_mps - domain.velocity_min_mps) *
              static_cast<double>(i) / static_cast<double>(kProbe - 1);
      const double alt =
          domain.altitude_min_m +
          (domain.altitude_max_m - domain.altitude_min_m) *
              static_cast<double>(j) / static_cast<double>(kProbe - 1);
      const double exact = surrogate_truth(v, alt)[0];
      acc.add((table.query(v, alt).q_conv_W_m2 - exact) / exact);
    }
  }
  LevelResult lr;
  lr.h = 1.0 / static_cast<double>(n);
  lr.n = n * n;
  lr.error = acc.finalize();
  return lr;
}

// ---------------------------------------------------------------------------
// Reactor-path temporal MMS (frozen two-species mechanism).
// ---------------------------------------------------------------------------

chemistry::Mechanism frozen_n2_mechanism() {
  const auto& db = gas::SpeciesDatabase::instance();
  gas::SpeciesSet set;
  set.db_index = {db.index("N2"), db.index("N")};
  set.names = {"N2", "N"};
  return chemistry::Mechanism(std::move(set), {});
}

// ---------------------------------------------------------------------------
// FV species-transport MMS ladder (frozen mechanism, advective order).
// ---------------------------------------------------------------------------

LevelResult run_fv_species_level(std::size_t n) {
  const FvManufactured field = supersonic_euler_field();
  const SpeciesManufactured sp = species_transport_field();
  const double extent = fv_domain_extent(field);
  const grid::StructuredGrid g = make_fv_grid(FvGrid::kCartesian, n, extent);
  auto gas = std::make_shared<core::IdealGasModel>(
      gas::IdealGas(field.gamma, field.r_gas));

  solvers::FvOptions opt;
  opt.cfl = 0.4;
  opt.max_iter = 60000;
  opt.residual_tol = 1e-11;
  opt.limiter = numerics::Limiter::kVanLeer;
  opt.muscl = true;
  opt.startup_iters = 300;
  opt.dirichlet = [&field](double x, double r) {
    return field.primitive(x, r);
  };
  opt.source = [&field](double x, double r) {
    return field.euler_source(x, r);
  };
  // Frozen (reaction-free) mechanism: the species ride the flow as pure
  // advection, so the ladder isolates the MUSCL/upwind species
  // discretization (the finite-rate source path is gated bitwise against
  // the scalar kernels in test_batch instead).
  opt.mechanism = std::make_shared<chemistry::Mechanism>(frozen_n2_mechanism());
  const double mid = 0.5 * extent;
  opt.species_y0 = {sp.y(0, mid, mid), sp.y(1, mid, mid)};
  opt.species_dirichlet = [&sp](double x, double r, std::span<double> yv) {
    yv[0] = sp.y(0, x, r);
    yv[1] = sp.y(1, x, r);
  };
  opt.species_source = [&](double x, double r, std::span<double> s_out) {
    s_out[0] = sp.source(field, 0, x, r);
    s_out[1] = sp.source(field, 1, x, r);
  };

  solvers::EulerSolver solver(g, gas, opt);
  solver.initialize({field.rho.v(mid, mid), field.u.v(mid, mid),
                     field.v.v(mid, mid), field.p.v(mid, mid)});
  solver.solve();

  NormAccumulator acc;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      acc.add(solver.species_mass_fraction(0, i, j) -
                  sp.y(0, g.xc(i, j), g.rc(i, j)),
              g.volume(i, j));
    }
  }
  LevelResult lr;
  lr.h = extent / static_cast<double>(n);
  lr.n = n;
  lr.error = acc.finalize();
  lr.functional = solver.residual();
  return lr;
}

LevelResult run_reactor_level(std::size_t nsteps) {
  static const chemistry::Mechanism mech = frozen_n2_mechanism();
  chemistry::IsochoricReactor reactor(mech);

  const double t_final = 1.0e-3;
  const double omega = 3000.0;
  const double amp = 0.1;
  const double t0 = 3000.0;
  auto y0_exact = [&](double t) { return 0.75 - amp * std::sin(omega * t); };

  reactor.set_source_hook([&](double t, std::span<const double> /*u*/,
                              std::span<double> du) {
    const double rate = amp * omega * std::cos(omega * t);
    du[0] -= rate;
    du[1] += rate;
    // du[2] (temperature) untouched: the frozen mechanism contributes
    // nothing, so T stays at t0 exactly along the manufactured solution.
  });
  numerics::StiffOptions sopt;
  sopt.rel_tol = 1e-9;
  sopt.abs_tol = 1e-12;
  sopt.fixed_step = t_final / static_cast<double>(nsteps);
  sopt.max_newton = 20;
  sopt.use_bdf2 = true;
  reactor.set_stiff_options(sopt);

  chemistry::IsochoricReactor::State st{{y0_exact(0.0), 1.0 - y0_exact(0.0)},
                                        t0};
  reactor.advance_coupled(st, /*rho=*/0.01, t_final);

  NormAccumulator acc;
  acc.add(st.y[0] - y0_exact(t_final));
  acc.add(st.y[1] - (1.0 - y0_exact(t_final)));
  acc.add((st.t - t0) / t0);
  LevelResult lr;
  lr.h = sopt.fixed_step;
  lr.n = nsteps;
  lr.error = acc.finalize();
  return lr;
}

// ---------------------------------------------------------------------------
// Stiff integrator, forced backward Euler: design order 1.
// ---------------------------------------------------------------------------

LevelResult run_backward_euler_level(std::size_t nsteps) {
  auto g = [](double t) { return 1.0 + 0.3 * std::sin(3.0 * t); };
  auto gp = [](double t) { return 0.9 * std::cos(3.0 * t); };
  numerics::OdeRhs rhs = [&](double t, std::span<const double> y,
                             std::span<double> dy) {
    dy[0] = -4.0 * (y[0] - g(t)) + gp(t);
  };
  numerics::StiffOptions sopt;
  sopt.rel_tol = 1e-10;
  sopt.abs_tol = 1e-13;
  sopt.fixed_step = 1.0 / static_cast<double>(nsteps);
  sopt.use_bdf2 = false;
  numerics::StiffIntegrator integ(rhs, nullptr, sopt);
  std::vector<double> y{g(0.0)};
  integ.integrate(0.0, 1.0, y);

  LevelResult lr;
  lr.h = sopt.fixed_step;
  lr.n = nsteps;
  NormAccumulator acc;
  acc.add(y[0] - g(1.0));
  lr.error = acc.finalize();
  return lr;
}

// ---------------------------------------------------------------------------
// relax1d marching pipeline exactness (frozen mechanism + injected source).
// ---------------------------------------------------------------------------

LevelResult run_relax1d_exactness() {
  static const chemistry::Mechanism mech = frozen_n2_mechanism();
  const double amp = 0.05, len = 2.0e-3;
  auto y_n2 = [&](double x) {
    return 1.0 - amp * (1.0 - std::exp(-x / len));
  };

  solvers::Relax1dOptions opt;
  opt.x_max_m = 0.01;
  opt.n_samples = 60;
  opt.x_first_m = 1e-5;
  opt.two_temperature = false;
  opt.source = [&](double x, std::span<const double> /*u*/,
                   std::span<double> du) {
    const double rate = (amp / len) * std::exp(-x / len);
    du[0] -= rate;  // N2 consumed ...
    du[1] += rate;  // ... into N, sum preserved
  };
  const solvers::PostShockRelaxation relax(mech, opt);
  const solvers::ShockTubeFreestream fs{50.0, 300.0, 4000.0};
  const std::vector<double> y1{1.0, 0.0};
  const auto prof = relax.solve(fs, y1);

  NormAccumulator acc;
  for (std::size_t k = 0; k < prof.size(); ++k) {
    acc.add(prof.y[0][k] - y_n2(prof.x[k]));
    acc.add(prof.y[1][k] - (1.0 - y_n2(prof.x[k])));
  }
  LevelResult lr;
  lr.h = opt.x_max_m / static_cast<double>(opt.n_samples);
  lr.n = opt.n_samples;
  lr.error = acc.finalize();
  return lr;
}

// ---------------------------------------------------------------------------
// Scenario-layer solution verification: VSL heating vs station count.
// ---------------------------------------------------------------------------

LevelResult run_vsl_station_level(std::size_t n_stations) {
  const scenario::Case* base = scenario::find_scenario("sphere_cone_vsl");
  CAT_REQUIRE(base != nullptr, "registry lost sphere_cone_vsl");
  scenario::Case c = *base;
  c.fidelity = scenario::Fidelity::kSmoke;
  c.n_stations = n_stations;
  const auto result = scenario::run_case(c);

  LevelResult lr;
  lr.h = 1.0 / static_cast<double>(n_stations);
  lr.n = n_stations;
  lr.functional = result.metric("aft_q_w");
  return lr;
}

// ---------------------------------------------------------------------------
// Catalog.
// ---------------------------------------------------------------------------

struct StudyEntry {
  StudyConfig cfg;
  std::size_t default_levels;
  std::size_t max_levels;
  LevelRunner runner;
};

std::vector<StudyEntry> make_entries() {
  std::vector<StudyEntry> entries;

  entries.push_back(
      {{"fv_euler_mms",
        "FV Euler interior: MUSCL/van Leer + HLLE on a manufactured "
        "supersonic field",
        "density error vs exact", StudyKind::kOrder, 2.0, 0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_fv_level(supersonic_euler_field(), false,
                             numerics::Limiter::kVanLeer, 8u << level);
       }});

  entries.push_back(
      {{"fv_euler_first_order",
        "FV Euler, first-order reconstruction (limiter kNone clips to "
        "piecewise-constant)",
        "density error vs exact", StudyKind::kOrder, 1.0, 0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_fv_level(supersonic_euler_field(), false,
                             numerics::Limiter::kNone, 8u << level);
       }});

  entries.push_back(
      {{"fv_ns_mms",
        "FV Navier-Stokes: thin-layer viscous fluxes at Reynolds ~20 on a "
        "manufactured field",
        "density error vs exact", StudyKind::kOrder, 2.0, 0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_fv_level(viscous_ns_field(), true,
                             numerics::Limiter::kVanLeer, 8u << level);
       }});

  entries.push_back(
      {{"fv_euler_curvilinear",
        "FV Euler on sinusoidally-skewed curvilinear grids: the full "
        "metric path (tilted faces) must keep design order",
        "density error vs exact", StudyKind::kOrder, 2.0, 0.35, 2, 0.0,
        /*upper_tolerance=*/1.1},
       3,
       5,
       [](std::size_t level) {
         return run_fv_level(supersonic_euler_field(), false,
                             numerics::Limiter::kMinmod, 8u << level,
                             FvGrid::kSkewed);
       }});

  entries.push_back(
      {{"fv_ns_stretched",
        "FV Navier-Stokes on smoothly-stretched non-uniform grids "
        "(y-aligned j-faces match the thin-layer viscous model)",
        "density error vs exact", StudyKind::kOrder, 2.0, 0.35, 2, 0.0,
        /*upper_tolerance=*/1.1},
       3,
       5,
       [](std::size_t level) {
         return run_fv_level(viscous_ns_field(), true,
                             numerics::Limiter::kMinmod, 8u << level,
                             FvGrid::kStretched);
       }});

  entries.push_back(
      {{"fv_species_mms",
        "FV species transport: MUSCL mass fractions upwinded on the HLLE "
        "mass flux (frozen mechanism isolates the advective order)",
        "mass-fraction error vs exact", StudyKind::kOrder, 2.0, 0.25, 2,
        0.0},
       3,
       5,
       [](std::size_t level) { return run_fv_species_level(8u << level); }});

  entries.push_back(
      {{"bl_march_mms",
        "Parabolic BL/VSL march: implicit tridiagonal eta sweeps on "
        "manufactured similarity profiles",
        "F/g profile error at the last station", StudyKind::kOrder, 2.0,
        0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_march_level((40u << level) + 1u);
       }});

  entries.push_back(
      {{"march_dxi_mms",
        "VSL/PNS marching core, streamwise Δξ ladder: variable-step BDF2 "
        "history terms on an s-modulated manufactured field",
        "F/g profile error at the last station", StudyKind::kOrder, 2.0,
        0.25, 2, 0.0},
       4,
       5,
       [](std::size_t level) {
         return run_march_dxi_level(level, /*order=*/2, /*omega0=*/1.0,
                                    /*omega1=*/0.0);
       }});

  entries.push_back(
      {{"march_dxi_bdf1",
        "VSL/PNS marching core, forced legacy BDF1 history terms: the "
        "ladder must detect the old first-order streamwise march",
        "F/g profile error at the last station", StudyKind::kOrder, 1.0,
        0.25, 2, 0.0},
       4,
       5,
       [](std::size_t level) {
         return run_march_dxi_level(level, /*order=*/1, /*omega0=*/1.0,
                                    /*omega1=*/0.0);
       }});

  entries.push_back(
      {{"pns_vigneron_mms",
        "PNS Vigneron splitting: streamwise Δξ ladder with a prescribed "
        "omega(s) < 1 scaling the admitted pressure gradient",
        "F/g profile error at the last station", StudyKind::kOrder, 2.0,
        0.25, 2, 0.0},
       4,
       5,
       [](std::size_t level) {
         return run_march_dxi_level(level, /*order=*/2, /*omega0=*/0.75,
                                    /*omega1=*/0.025);
       }});

  entries.push_back(
      {{"ebl_dxi_ladder",
        "E+BL pipeline: aft heating vs station count through the scenario "
        "layer (gated functional self-convergence, design order 2)",
        "aft_q_w [W/m^2]", StudyKind::kFunctionalOrder, 2.0, 0.35, 1, 0.0},
       4,
       5,
       [](std::size_t level) { return run_ebl_dxi_level(8u << level); }});

  entries.push_back(
      {{"reactor_time_order",
        "Reactor path (frozen 2-species N2/N): BDF2 temporal order through "
        "IsochoricReactor + SourceHook",
        "state error at t_final", StudyKind::kOrder, 2.0, 0.25, 2, 0.0},
       4,
       6,
       [](std::size_t level) { return run_reactor_level(64u << level); }});

  entries.push_back(
      {{"stiff_backward_euler",
        "StiffIntegrator, forced backward Euler steps: temporal design "
        "order 1",
        "state error at t = 1", StudyKind::kOrder, 1.0, 0.25, 2, 0.0},
       4,
       6,
       [](std::size_t level) {
         return run_backward_euler_level(20u << level);
       }});

  entries.push_back(
      {{"relax1d_mms",
        "relax1d marching/recovery pipeline: frozen mechanism + injected "
        "source reproduces the manufactured profile",
        "species profile deviation", StudyKind::kExactness, 0.0, 0.0, 0,
        1e-5},
       1,
       1,
       [](std::size_t) { return run_relax1d_exactness(); }});

  entries.push_back(
      {{"surrogate_refinement",
        "Surrogate tier: multilinear table refinement against an analytic "
        "exponential-atmosphere heating field (design order 2)",
        "relative q_conv error over the flight domain", StudyKind::kOrder,
        2.0, 0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_surrogate_level(8u << level);
       }});

  entries.push_back(
      {{"vsl_station_ladder",
        "Scenario layer: sphere_cone_vsl aft heating vs marching-station "
        "count (solution verification, Richardson)",
        "aft_q_w [W/m^2]", StudyKind::kReport, 1.0, 0.0, 0, 0.0},
       3,
       4,
       [](std::size_t level) {
         return run_vsl_station_level(8u << level);
       }});

  return entries;
}

const std::vector<StudyEntry>& entries() {
  static const std::vector<StudyEntry> e = make_entries();
  return e;
}

}  // namespace

std::vector<StudyConfig> study_catalog() {
  std::vector<StudyConfig> out;
  for (const auto& e : entries()) out.push_back(e.cfg);
  return out;
}

StudyResult run_study(std::string_view name, const StudyOptions& opt) {
  for (const auto& e : entries()) {
    if (e.cfg.name != name) continue;
    std::size_t levels = opt.levels > 0 ? opt.levels : e.default_levels;
    levels = std::min(levels, e.max_levels);
    if (e.cfg.kind == StudyKind::kOrder)
      levels = std::max(levels, e.cfg.gate_pairs + 1);
    if (e.cfg.kind == StudyKind::kFunctionalOrder)
      levels = std::max(levels, e.cfg.gate_pairs + 2);
    if (e.cfg.kind == StudyKind::kReport)
      levels = std::max<std::size_t>(levels, 3);
    return run_convergence_study(e.cfg, levels, e.runner);
  }
  throw std::invalid_argument("unknown verification study: " +
                              std::string(name));
}

std::vector<StudyResult> run_all_studies(const StudyOptions& opt) {
  std::vector<StudyResult> out;
  for (const auto& e : entries()) out.push_back(run_study(e.cfg.name, opt));
  return out;
}

}  // namespace cat::verify
