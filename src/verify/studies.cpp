#include "verify/studies.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "chemistry/source.hpp"
#include "core/error.hpp"
#include "core/gas_model.hpp"
#include "gas/species.hpp"
#include "grid/grid.hpp"
#include "numerics/ode.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "solvers/euler/euler.hpp"
#include "solvers/relax1d/relax1d.hpp"
#include "verify/mms.hpp"

namespace cat::verify {
namespace {

// ---------------------------------------------------------------------------
// Finite-volume MMS ladders (Euler / thin-layer NS).
// ---------------------------------------------------------------------------

grid::StructuredGrid uniform_cartesian(std::size_t n, double extent) {
  grid::StructuredGrid g(n, n);
  for (std::size_t i = 0; i <= n; ++i) {
    for (std::size_t j = 0; j <= n; ++j) {
      g.xn(i, j) = extent * static_cast<double>(i) / static_cast<double>(n);
      g.rn(i, j) = extent * static_cast<double>(j) / static_cast<double>(n);
    }
  }
  g.compute_metrics(/*axisymmetric=*/false);
  return g;
}

LevelResult run_fv_level(const FvManufactured& field, bool viscous,
                         numerics::Limiter limiter, std::size_t n) {
  const double extent = fv_domain_extent(field);
  const grid::StructuredGrid g = uniform_cartesian(n, extent);
  auto gas = std::make_shared<core::IdealGasModel>(
      gas::IdealGas(field.gamma, field.r_gas));

  solvers::FvOptions opt;
  opt.cfl = 0.4;
  opt.max_iter = 60000;
  opt.residual_tol = 1e-11;
  opt.limiter = limiter;
  opt.muscl = limiter != numerics::Limiter::kNone;
  opt.startup_iters = 300;
  opt.viscous = viscous;
  opt.prandtl = field.prandtl;
  opt.dirichlet = [&field](double x, double r) {
    return field.primitive(x, r);
  };
  opt.source = [&field, viscous](double x, double r) {
    return viscous ? field.ns_source(x, r) : field.euler_source(x, r);
  };

  solvers::EulerSolver solver(g, gas, opt);
  const double mid = 0.5 * extent;
  solver.initialize({field.rho.v(mid, mid), field.u.v(mid, mid),
                     field.v.v(mid, mid), field.p.v(mid, mid)});
  solver.solve();

  NormAccumulator acc;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double exact =
          field.primitive(g.xc(i, j), g.rc(i, j))[0];
      acc.add((solver.primitive(i, j)[0] - exact) / field.rho.c0,
              g.volume(i, j));
    }
  }
  LevelResult lr;
  lr.h = extent / static_cast<double>(n);
  lr.n = n;
  lr.error = acc.finalize();
  lr.functional = solver.residual();
  return lr;
}

// ---------------------------------------------------------------------------
// Parabolic-march (BL tridiagonal) MMS ladder.
// ---------------------------------------------------------------------------

struct MarchSetup {
  MarchManufactured m{};
  double cp = 1000.0;
  double h_total = 1.2e6;
  double rho_c = 0.05;
  double mu_c = 2.0e-4;
  double ue = 200.0;
  double r_body = 0.5;
  double s0 = 1.0;
  std::size_t n_stations = 4;

  double t_wall() const { return m.g_w * h_total / cp; }
  std::vector<solvers::MarchEdge> edges() const {
    std::vector<solvers::MarchEdge> e(n_stations);
    for (std::size_t i = 0; i < n_stations; ++i) {
      e[i].s = s0 + static_cast<double>(i);
      e[i].r = r_body;
      e[i].p_e = 1000.0;
      e[i].ue = ue;
      e[i].h_e = h_total - 0.5 * ue * ue;
      e[i].rho_e = rho_c;
      e[i].mu_e = mu_c;
      e[i].t_e = e[i].h_e / cp;
      e[i].vigneron_omega = 1.0;
    }
    return e;
  }
  /// The marcher's own xi quadrature is exact here (constant integrand):
  /// xi(s_last) for the q_w reference value.
  double xi_last() const {
    const double f0 = rho_c * mu_c * ue * r_body * r_body;
    return 0.25 * f0 * s0 +
           f0 * static_cast<double>(n_stations - 1);
  }
  double q_wall_exact() const {
    const double metric =
        ue * r_body / std::sqrt(2.0 * xi_last());
    return m.gp(0.0) * h_total * metric * rho_c * mu_c;
  }
};

LevelResult run_march_level(std::size_t n_eta) {
  MarchSetup su;
  const double d_eta = su.m.eta_max / static_cast<double>(n_eta - 1);

  solvers::MarchOptions opt;
  opt.wall_temperature = su.t_wall();
  opt.n_eta = n_eta;
  opt.eta_max = su.m.eta_max;
  opt.n_table = 12;
  opt.picard_iters = 400;
  const double s0 = su.s0;
  opt.momentum_source = [m = su.m, s0](double s, double eta) {
    // The marching core pins beta = 0.5 at its first station (axisymmetric
    // stagnation value); downstream beta = 0 for the constant edge state.
    return m.momentum_source(eta, s == s0 ? 0.5 : 0.0);
  };
  opt.energy_source = [m = su.m](double /*s*/, double eta) {
    return m.energy_source(eta);
  };
  std::vector<double> f_last, g_last;
  opt.profile_observer = [&](std::size_t /*station*/, double /*s*/,
                             std::span<const double> f,
                             std::span<const double> g) {
    f_last.assign(f.begin(), f.end());
    g_last.assign(g.begin(), g.end());
  };

  solvers::ParabolicMarcher marcher(
      make_constant_props(su.rho_c, su.mu_c, su.cp), opt);
  const auto out = marcher.march(su.edges(), su.h_total);
  CAT_REQUIRE(f_last.size() == n_eta, "profile observer missed the march");

  NormAccumulator acc;
  for (std::size_t j = 0; j < n_eta; ++j) {
    const double eta = static_cast<double>(j) * d_eta;
    acc.add(f_last[j] - su.m.f_profile(eta), d_eta);
    acc.add(g_last[j] - su.m.g_profile(eta), d_eta);
  }
  LevelResult lr;
  lr.h = d_eta;
  lr.n = n_eta;
  lr.error = acc.finalize();
  // Wall-heating error rides along: q_w uses the one-sided wall gradient,
  // which must keep up with the interior order (it did not, before the
  // second-order gradient fix in the marching core).
  lr.functional = std::fabs(out.back().q_w - su.q_wall_exact());
  return lr;
}

// ---------------------------------------------------------------------------
// Reactor-path temporal MMS (frozen two-species mechanism).
// ---------------------------------------------------------------------------

chemistry::Mechanism frozen_n2_mechanism() {
  const auto& db = gas::SpeciesDatabase::instance();
  gas::SpeciesSet set;
  set.db_index = {db.index("N2"), db.index("N")};
  set.names = {"N2", "N"};
  return chemistry::Mechanism(std::move(set), {});
}

LevelResult run_reactor_level(std::size_t nsteps) {
  static const chemistry::Mechanism mech = frozen_n2_mechanism();
  chemistry::IsochoricReactor reactor(mech);

  const double t_final = 1.0e-3;
  const double omega = 3000.0;
  const double amp = 0.1;
  const double t0 = 3000.0;
  auto y0_exact = [&](double t) { return 0.75 - amp * std::sin(omega * t); };

  reactor.set_source_hook([&](double t, std::span<const double> /*u*/,
                              std::span<double> du) {
    const double rate = amp * omega * std::cos(omega * t);
    du[0] -= rate;
    du[1] += rate;
    // du[2] (temperature) untouched: the frozen mechanism contributes
    // nothing, so T stays at t0 exactly along the manufactured solution.
  });
  numerics::StiffOptions sopt;
  sopt.rel_tol = 1e-9;
  sopt.abs_tol = 1e-12;
  sopt.fixed_step = t_final / static_cast<double>(nsteps);
  sopt.max_newton = 20;
  sopt.use_bdf2 = true;
  reactor.set_stiff_options(sopt);

  chemistry::IsochoricReactor::State st{{y0_exact(0.0), 1.0 - y0_exact(0.0)},
                                        t0};
  reactor.advance_coupled(st, /*rho=*/0.01, t_final);

  NormAccumulator acc;
  acc.add(st.y[0] - y0_exact(t_final));
  acc.add(st.y[1] - (1.0 - y0_exact(t_final)));
  acc.add((st.t - t0) / t0);
  LevelResult lr;
  lr.h = sopt.fixed_step;
  lr.n = nsteps;
  lr.error = acc.finalize();
  return lr;
}

// ---------------------------------------------------------------------------
// Stiff integrator, forced backward Euler: design order 1.
// ---------------------------------------------------------------------------

LevelResult run_backward_euler_level(std::size_t nsteps) {
  auto g = [](double t) { return 1.0 + 0.3 * std::sin(3.0 * t); };
  auto gp = [](double t) { return 0.9 * std::cos(3.0 * t); };
  numerics::OdeRhs rhs = [&](double t, std::span<const double> y,
                             std::span<double> dy) {
    dy[0] = -4.0 * (y[0] - g(t)) + gp(t);
  };
  numerics::StiffOptions sopt;
  sopt.rel_tol = 1e-10;
  sopt.abs_tol = 1e-13;
  sopt.fixed_step = 1.0 / static_cast<double>(nsteps);
  sopt.use_bdf2 = false;
  numerics::StiffIntegrator integ(rhs, nullptr, sopt);
  std::vector<double> y{g(0.0)};
  integ.integrate(0.0, 1.0, y);

  LevelResult lr;
  lr.h = sopt.fixed_step;
  lr.n = nsteps;
  NormAccumulator acc;
  acc.add(y[0] - g(1.0));
  lr.error = acc.finalize();
  return lr;
}

// ---------------------------------------------------------------------------
// relax1d marching pipeline exactness (frozen mechanism + injected source).
// ---------------------------------------------------------------------------

LevelResult run_relax1d_exactness() {
  static const chemistry::Mechanism mech = frozen_n2_mechanism();
  const double amp = 0.05, len = 2.0e-3;
  auto y_n2 = [&](double x) {
    return 1.0 - amp * (1.0 - std::exp(-x / len));
  };

  solvers::Relax1dOptions opt;
  opt.x_max = 0.01;
  opt.n_samples = 60;
  opt.x_first = 1e-5;
  opt.two_temperature = false;
  opt.source = [&](double x, std::span<const double> /*u*/,
                   std::span<double> du) {
    const double rate = (amp / len) * std::exp(-x / len);
    du[0] -= rate;  // N2 consumed ...
    du[1] += rate;  // ... into N, sum preserved
  };
  const solvers::PostShockRelaxation relax(mech, opt);
  const solvers::ShockTubeFreestream fs{50.0, 300.0, 4000.0};
  const std::vector<double> y1{1.0, 0.0};
  const auto prof = relax.solve(fs, y1);

  NormAccumulator acc;
  for (std::size_t k = 0; k < prof.size(); ++k) {
    acc.add(prof.y[0][k] - y_n2(prof.x[k]));
    acc.add(prof.y[1][k] - (1.0 - y_n2(prof.x[k])));
  }
  LevelResult lr;
  lr.h = opt.x_max / static_cast<double>(opt.n_samples);
  lr.n = opt.n_samples;
  lr.error = acc.finalize();
  return lr;
}

// ---------------------------------------------------------------------------
// Scenario-layer solution verification: VSL heating vs station count.
// ---------------------------------------------------------------------------

LevelResult run_vsl_station_level(std::size_t n_stations) {
  const scenario::Case* base = scenario::find_scenario("sphere_cone_vsl");
  CAT_REQUIRE(base != nullptr, "registry lost sphere_cone_vsl");
  scenario::Case c = *base;
  c.fidelity = scenario::Fidelity::kSmoke;
  c.n_stations = n_stations;
  const auto result = scenario::run_case(c);

  LevelResult lr;
  lr.h = 1.0 / static_cast<double>(n_stations);
  lr.n = n_stations;
  lr.functional = result.metric("aft_q_w");
  return lr;
}

// ---------------------------------------------------------------------------
// Catalog.
// ---------------------------------------------------------------------------

struct StudyEntry {
  StudyConfig cfg;
  std::size_t default_levels;
  std::size_t max_levels;
  LevelRunner runner;
};

std::vector<StudyEntry> make_entries() {
  std::vector<StudyEntry> entries;

  entries.push_back(
      {{"fv_euler_mms",
        "FV Euler interior: MUSCL/van Leer + HLLE on a manufactured "
        "supersonic field",
        "density error vs exact", StudyKind::kOrder, 2.0, 0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_fv_level(supersonic_euler_field(), false,
                             numerics::Limiter::kVanLeer, 8u << level);
       }});

  entries.push_back(
      {{"fv_euler_first_order",
        "FV Euler, first-order reconstruction (limiter kNone clips to "
        "piecewise-constant)",
        "density error vs exact", StudyKind::kOrder, 1.0, 0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_fv_level(supersonic_euler_field(), false,
                             numerics::Limiter::kNone, 8u << level);
       }});

  entries.push_back(
      {{"fv_ns_mms",
        "FV Navier-Stokes: thin-layer viscous fluxes at Reynolds ~20 on a "
        "manufactured field",
        "density error vs exact", StudyKind::kOrder, 2.0, 0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_fv_level(viscous_ns_field(), true,
                             numerics::Limiter::kVanLeer, 8u << level);
       }});

  entries.push_back(
      {{"bl_march_mms",
        "Parabolic BL/VSL march: implicit tridiagonal eta sweeps on "
        "manufactured similarity profiles",
        "F/g profile error at the last station", StudyKind::kOrder, 2.0,
        0.25, 2, 0.0},
       3,
       5,
       [](std::size_t level) {
         return run_march_level((40u << level) + 1u);
       }});

  entries.push_back(
      {{"reactor_time_order",
        "Reactor path (frozen 2-species N2/N): BDF2 temporal order through "
        "IsochoricReactor + SourceHook",
        "state error at t_final", StudyKind::kOrder, 2.0, 0.25, 2, 0.0},
       4,
       6,
       [](std::size_t level) { return run_reactor_level(64u << level); }});

  entries.push_back(
      {{"stiff_backward_euler",
        "StiffIntegrator, forced backward Euler steps: temporal design "
        "order 1",
        "state error at t = 1", StudyKind::kOrder, 1.0, 0.25, 2, 0.0},
       4,
       6,
       [](std::size_t level) {
         return run_backward_euler_level(20u << level);
       }});

  entries.push_back(
      {{"relax1d_mms",
        "relax1d marching/recovery pipeline: frozen mechanism + injected "
        "source reproduces the manufactured profile",
        "species profile deviation", StudyKind::kExactness, 0.0, 0.0, 0,
        1e-5},
       1,
       1,
       [](std::size_t) { return run_relax1d_exactness(); }});

  entries.push_back(
      {{"vsl_station_ladder",
        "Scenario layer: sphere_cone_vsl aft heating vs marching-station "
        "count (solution verification, Richardson)",
        "aft_q_w [W/m^2]", StudyKind::kReport, 1.0, 0.0, 0, 0.0},
       3,
       4,
       [](std::size_t level) {
         return run_vsl_station_level(8u << level);
       }});

  return entries;
}

const std::vector<StudyEntry>& entries() {
  static const std::vector<StudyEntry> e = make_entries();
  return e;
}

}  // namespace

std::vector<StudyConfig> study_catalog() {
  std::vector<StudyConfig> out;
  for (const auto& e : entries()) out.push_back(e.cfg);
  return out;
}

StudyResult run_study(std::string_view name, const StudyOptions& opt) {
  for (const auto& e : entries()) {
    if (e.cfg.name != name) continue;
    std::size_t levels = opt.levels > 0 ? opt.levels : e.default_levels;
    levels = std::min(levels, e.max_levels);
    if (e.cfg.kind == StudyKind::kOrder)
      levels = std::max(levels, e.cfg.gate_pairs + 1);
    if (e.cfg.kind == StudyKind::kReport)
      levels = std::max<std::size_t>(levels, 3);
    return run_convergence_study(e.cfg, levels, e.runner);
  }
  throw std::invalid_argument("unknown verification study: " +
                              std::string(name));
}

std::vector<StudyResult> run_all_studies(const StudyOptions& opt) {
  std::vector<StudyResult> out;
  for (const auto& e : entries()) out.push_back(run_study(e.cfg.name, opt));
  return out;
}

}  // namespace cat::verify
