#include "verify/mms.hpp"

#include <cmath>

#include "transport/transport.hpp"

namespace cat::verify {

double TrigField::v(double x, double y) const {
  return c0 + amp * std::sin(kx * x + ky * y + phase);
}
double TrigField::dx(double x, double y) const {
  return amp * kx * std::cos(kx * x + ky * y + phase);
}
double TrigField::dy(double x, double y) const {
  return amp * ky * std::cos(kx * x + ky * y + phase);
}
double TrigField::dyy(double x, double y) const {
  return -amp * ky * ky * std::sin(kx * x + ky * y + phase);
}

std::array<double, 4> FvManufactured::primitive(double x, double y) const {
  const double r = rho.v(x, y);
  return {r, u.v(x, y), v.v(x, y), p.v(x, y) / ((gamma - 1.0) * r)};
}

double FvManufactured::temperature(double x, double y) const {
  return p.v(x, y) / (rho.v(x, y) * r_gas);
}

std::array<double, 4> FvManufactured::convective_flux_x(double x,
                                                        double y) const {
  const double r = rho.v(x, y), uu = u.v(x, y), vv = v.v(x, y),
               pp = p.v(x, y);
  const double w = gamma * pp / (gamma - 1.0) +
                   0.5 * r * (uu * uu + vv * vv);  // rho E + p
  return {r * uu, r * uu * uu + pp, r * uu * vv, uu * w};
}

std::array<double, 4> FvManufactured::convective_flux_y(double x,
                                                        double y) const {
  const double r = rho.v(x, y), uu = u.v(x, y), vv = v.v(x, y),
               pp = p.v(x, y);
  const double w = gamma * pp / (gamma - 1.0) +
                   0.5 * r * (uu * uu + vv * vv);
  return {r * vv, r * uu * vv, r * vv * vv + pp, vv * w};
}

namespace {
/// Sutherland viscosity and its temperature derivative. mu comes from the
/// solver's own transport::sutherland_viscosity so the manufactured
/// viscous sources can never drift from the model the solver actually
/// uses; the derivative is a tight central difference of the same
/// function (relative error ~1e-10, far below any discretization error
/// the studies measure).
struct MuDmu {
  double mu, dmu_dt;
};
MuDmu sutherland_with_derivative(double t) {
  const double mu = transport::sutherland_viscosity(t);
  const double dt = 1e-4 * t;
  const double dmu = (transport::sutherland_viscosity(t + dt) -
                      transport::sutherland_viscosity(t - dt)) /
                     (2.0 * dt);
  return {mu, dmu};
}
}  // namespace

std::array<double, 4> FvManufactured::thin_layer_flux_y(double x,
                                                        double y) const {
  const double uu = u.v(x, y), vv = v.v(x, y);
  const double uy = u.dy(x, y), vy = v.dy(x, y);
  const double r = rho.v(x, y), pp = p.v(x, y);
  const double t = pp / (r * r_gas);
  const double ty =
      (p.dy(x, y) * r - pp * rho.dy(x, y)) / (r * r * r_gas);
  const auto [mu, dmu] = sutherland_with_derivative(t);
  (void)dmu;
  const double cp = gamma * r_gas / (gamma - 1.0);
  const double k_cond = mu * cp / prandtl;
  const double fx = mu * uy;
  const double fr = (4.0 / 3.0) * mu * vy;
  return {0.0, fx, fr, fx * uu + fr * vv + k_cond * ty};
}

std::array<double, 4> FvManufactured::euler_source(double x, double y) const {
  const double r = rho.v(x, y), uu = u.v(x, y), vv = v.v(x, y),
               pp = p.v(x, y);
  const double rx = rho.dx(x, y), ry = rho.dy(x, y);
  const double ux = u.dx(x, y), uy = u.dy(x, y);
  const double vx = v.dx(x, y), vy = v.dy(x, y);
  const double px = p.dx(x, y), py = p.dy(x, y);

  const double q2 = uu * uu + vv * vv;
  const double w = gamma * pp / (gamma - 1.0) + 0.5 * r * q2;
  const double wx = gamma * px / (gamma - 1.0) + 0.5 * rx * q2 +
                    r * (uu * ux + vv * vx);
  const double wy = gamma * py / (gamma - 1.0) + 0.5 * ry * q2 +
                    r * (uu * uy + vv * vy);

  return {
      rx * uu + r * ux + ry * vv + r * vy,
      rx * uu * uu + 2.0 * r * uu * ux + px + ry * uu * vv +
          r * (uy * vv + uu * vy),
      rx * uu * vv + r * (ux * vv + uu * vx) + ry * vv * vv +
          2.0 * r * vv * vy + py,
      ux * w + uu * wx + vy * w + vv * wy,
  };
}

std::array<double, 4> FvManufactured::ns_source(double x, double y) const {
  std::array<double, 4> s = euler_source(x, y);

  const double r = rho.v(x, y), uu = u.v(x, y), vv = v.v(x, y),
               pp = p.v(x, y);
  const double ry = rho.dy(x, y), ryy = rho.dyy(x, y);
  const double uy = u.dy(x, y), uyy = u.dyy(x, y);
  const double vy = v.dy(x, y), vyy = v.dyy(x, y);
  const double py = p.dy(x, y), pyy = p.dyy(x, y);

  const double t = pp / (r * r_gas);
  const double ty = (py * r - pp * ry) / (r * r * r_gas);
  const double tyy = pyy / (r * r_gas) - 2.0 * py * ry / (r * r * r_gas) -
                     pp * ryy / (r * r * r_gas) +
                     2.0 * pp * ry * ry / (r * r * r * r_gas);
  const auto [mu, dmu] = sutherland_with_derivative(t);
  const double muy = dmu * ty;
  const double cp = gamma * r_gas / (gamma - 1.0);

  const double d_fx = muy * uy + mu * uyy;
  const double d_fr = (4.0 / 3.0) * (muy * vy + mu * vyy);
  const double d_fe = muy * uu * uy + mu * (uy * uy + uu * uyy) +
                      (4.0 / 3.0) * (muy * vv * vy + mu * (vy * vy + vv * vyy)) +
                      cp / prandtl * (muy * ty + mu * tyy);

  s[1] -= d_fx;
  s[2] -= d_fr;
  s[3] -= d_fe;
  return s;
}

FvManufactured supersonic_euler_field() {
  FvManufactured f;
  // Unit-square domain; every sin argument stays in (0.2, 1.45), a
  // monotone branch, so all four reconstructed primitives are monotone
  // along both sweep directions (see TrigField).
  f.rho = {1.0, 0.15, 0.55, 0.50, 0.25};
  f.p = {1.0e5, 0.6e4, 0.55, 0.50, 0.25};  // shares (k, phase) with rho
  f.u = {850.0, 60.0, 0.45, 0.55, 0.40};
  f.v = {120.0, 40.0, 0.60, 0.40, 0.20};
  return f;
}

FvManufactured viscous_ns_field() {
  FvManufactured f;
  // 1 cm domain at rarefied density: Reynolds number O(20), so the
  // thin-layer viscous fluxes carry an observable share of the balance.
  const double s = 100.0;  // wavenumber scale for the 0.01 m extent
  f.rho = {6.0e-5, 1.0e-5, 0.55 * s, 0.50 * s, 0.25};
  f.p = {6.0, 0.36, 0.55 * s, 0.50 * s, 0.25};
  f.u = {850.0, 60.0, 0.45 * s, 0.55 * s, 0.40};
  f.v = {120.0, 40.0, 0.60 * s, 0.40 * s, 0.20};
  return f;
}

double fv_domain_extent(const FvManufactured& f) {
  // Wavenumbers are scaled so (kx + ky) * extent stays in the monotone
  // window; the catalog fields encode the extent in rho.kx.
  return 0.55 / f.rho.kx;
}

double SpeciesManufactured::y(std::size_t s, double x, double yy) const {
  const double v0 = y0.v(x, yy);
  return s == 0 ? v0 : 1.0 - v0;
}

double SpeciesManufactured::flux_x(const FvManufactured& flow, std::size_t s,
                                   double x, double yy) const {
  return flow.rho.v(x, yy) * flow.u.v(x, yy) * y(s, x, yy);
}

double SpeciesManufactured::flux_y(const FvManufactured& flow, std::size_t s,
                                   double x, double yy) const {
  return flow.rho.v(x, yy) * flow.v.v(x, yy) * y(s, x, yy);
}

double SpeciesManufactured::source(const FvManufactured& flow, std::size_t s,
                                   double x, double yy) const {
  const double r = flow.rho.v(x, yy), uu = flow.u.v(x, yy),
               vv = flow.v.v(x, yy);
  const double div_m = flow.rho.dx(x, yy) * uu + r * flow.u.dx(x, yy) +
                       flow.rho.dy(x, yy) * vv + r * flow.v.dy(x, yy);
  const double sgn = s == 0 ? 1.0 : -1.0;  // y_1 = 1 - y_0
  return y(s, x, yy) * div_m +
         r * sgn * (uu * y0.dx(x, yy) + vv * y0.dy(x, yy));
}

SpeciesManufactured species_transport_field() {
  SpeciesManufactured sp;
  // Shares the supersonic field's monotone sin window (argument stays in
  // (0.35, 1.30) on the unit domain) so limiters never clip y_0, and the
  // amplitude keeps y_0 in [0.30, 0.60].
  sp.y0 = {0.45, 0.15, 0.50, 0.45, 0.35};
  return sp;
}

double MarchManufactured::f_profile(double eta) const {
  const double z = eta / eta_max;
  return z + a_f * std::sin(M_PI * z);
}
double MarchManufactured::g_profile(double eta) const {
  const double z = eta / eta_max;
  return g_w + (1.0 - g_w) * z + a_g * std::sin(M_PI * z);
}
double MarchManufactured::f_stream(double eta) const {
  const double z = eta / eta_max;
  return eta_max * (0.5 * z * z + a_f * (1.0 - std::cos(M_PI * z)) / M_PI);
}
double MarchManufactured::fp(double eta) const {
  const double z = eta / eta_max;
  return (1.0 + a_f * M_PI * std::cos(M_PI * z)) / eta_max;
}
double MarchManufactured::gp(double eta) const {
  const double z = eta / eta_max;
  return ((1.0 - g_w) + a_g * M_PI * std::cos(M_PI * z)) / eta_max;
}
double MarchManufactured::fpp(double eta) const {
  const double z = eta / eta_max;
  return -a_f * M_PI * M_PI * std::sin(M_PI * z) / (eta_max * eta_max);
}
double MarchManufactured::gpp(double eta) const {
  const double z = eta / eta_max;
  return -a_g * M_PI * M_PI * std::sin(M_PI * z) / (eta_max * eta_max);
}

double MarchManufactured::momentum_source(double eta, double beta) const {
  const double f = f_profile(eta);
  return -(fpp(eta) + f_stream(eta) * fp(eta) + beta * (1.0 - f * f));
}
double MarchManufactured::energy_source(double eta) const {
  return -(gpp(eta) + f_stream(eta) * gp(eta));
}

double MarchStreamwiseManufactured::ue(double s) const {
  return u0 + u1 * (s - s0);
}
double MarchStreamwiseManufactured::omega(double s) const {
  return omega0 + omega1 * (s - s0);
}
double MarchStreamwiseManufactured::xi(double s) const {
  const double fac = rho_c * mu_c * r_body * r_body;
  return 0.25 * fac * u0 * s0 +
         fac * (u0 * (s - s0) + 0.5 * u1 * (s - s0) * (s - s0));
}
double MarchStreamwiseManufactured::dxi_ds(double s) const {
  return rho_c * mu_c * r_body * r_body * ue(s);
}
double MarchStreamwiseManufactured::beta_eff(double s) const {
  return omega(s) * 2.0 * xi(s) * u1 / (dxi_ds(s) * ue(s));
}

double MarchStreamwiseManufactured::F(double eta, double s) const {
  const double z = eta / eta_max;
  return z + (a_f + a_x * std::sin(k_f * s + phase_f)) * std::sin(M_PI * z);
}
double MarchStreamwiseManufactured::g(double eta, double s) const {
  const double z = eta / eta_max;
  return g_w + (1.0 - g_w) * z +
         (a_g + a_gx * std::sin(k_g * s + phase_g)) * std::sin(M_PI * z);
}
double MarchStreamwiseManufactured::F_eta(double eta, double s) const {
  const double z = eta / eta_max;
  return (1.0 + (a_f + a_x * std::sin(k_f * s + phase_f)) * M_PI *
                    std::cos(M_PI * z)) /
         eta_max;
}
double MarchStreamwiseManufactured::F_etaeta(double eta, double s) const {
  const double z = eta / eta_max;
  return -(a_f + a_x * std::sin(k_f * s + phase_f)) * M_PI * M_PI *
         std::sin(M_PI * z) / (eta_max * eta_max);
}
double MarchStreamwiseManufactured::g_eta(double eta, double s) const {
  const double z = eta / eta_max;
  return ((1.0 - g_w) + (a_g + a_gx * std::sin(k_g * s + phase_g)) * M_PI *
                            std::cos(M_PI * z)) /
         eta_max;
}
double MarchStreamwiseManufactured::g_etaeta(double eta, double s) const {
  const double z = eta / eta_max;
  return -(a_g + a_gx * std::sin(k_g * s + phase_g)) * M_PI * M_PI *
         std::sin(M_PI * z) / (eta_max * eta_max);
}
double MarchStreamwiseManufactured::f_stream(double eta, double s) const {
  const double z = eta / eta_max;
  return eta_max * (0.5 * z * z + (a_f + a_x * std::sin(k_f * s + phase_f)) *
                                      (1.0 - std::cos(M_PI * z)) / M_PI);
}
double MarchStreamwiseManufactured::F_xi(double eta, double s) const {
  const double z = eta / eta_max;
  return a_x * k_f * std::cos(k_f * s + phase_f) * std::sin(M_PI * z) /
         dxi_ds(s);
}
double MarchStreamwiseManufactured::g_xi(double eta, double s) const {
  const double z = eta / eta_max;
  return a_gx * k_g * std::cos(k_g * s + phase_g) * std::sin(M_PI * z) /
         dxi_ds(s);
}
double MarchStreamwiseManufactured::f_stream_xi(double eta, double s) const {
  const double z = eta / eta_max;
  return eta_max * a_x * k_f * std::cos(k_f * s + phase_f) *
         (1.0 - std::cos(M_PI * z)) / (M_PI * dxi_ds(s));
}

double MarchStreamwiseManufactured::momentum_source(double eta, double s,
                                                    bool station0) const {
  const double Fv = F(eta, s);
  if (station0) {
    return -(F_etaeta(eta, s) + f_stream(eta, s) * F_eta(eta, s) +
             0.5 * (1.0 - Fv * Fv));
  }
  const double x = xi(s);
  const double conv = f_stream(eta, s) + x * f_stream_xi(eta, s);
  return -(F_etaeta(eta, s) + conv * F_eta(eta, s) +
           beta_eff(s) * (1.0 - Fv * Fv) - 2.0 * x * Fv * F_xi(eta, s));
}
double MarchStreamwiseManufactured::energy_source(double eta, double s,
                                                  bool station0) const {
  if (station0) {
    return -(g_etaeta(eta, s) + f_stream(eta, s) * g_eta(eta, s));
  }
  const double x = xi(s);
  const double conv = f_stream(eta, s) + x * f_stream_xi(eta, s);
  return -(g_etaeta(eta, s) + conv * g_eta(eta, s) -
           2.0 * x * F(eta, s) * g_xi(eta, s));
}

solvers::MarchEdge MarchStreamwiseManufactured::edge(double s) const {
  solvers::MarchEdge e;
  e.s = s;
  e.r = r_body;
  e.p_e = p_edge;
  e.ue = ue(s);
  e.h_e = h_total - 0.5 * e.ue * e.ue;
  e.rho_e = rho_c;
  e.mu_e = mu_c;
  e.t_e = e.h_e / cp;
  e.vigneron_omega = omega(s);
  return e;
}
double MarchStreamwiseManufactured::q_wall_exact(double s) const {
  const double metric = ue(s) * r_body / std::sqrt(2.0 * xi(s));
  return g_eta(0.0, s) * h_total * metric * rho_c * mu_c;
}

solvers::PropertyProvider make_constant_props(double rho_c, double mu_c,
                                              double cp) {
  return [=](double /*p*/, double h) {
    solvers::PhState st;
    st.rho = rho_c;
    st.t = h / cp;
    st.mu = mu_c;
    st.pr = 1.0;
    st.h = h;
    return st;
  };
}

}  // namespace cat::verify
