#include "verify/convergence.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/error.hpp"

namespace cat::verify {

void NormAccumulator::add(double error, double weight) {
  const double e = std::fabs(error);
  sum_w_ += weight;
  sum_1_ += e * weight;
  sum_2_ += e * e * weight;
  max_ = std::max(max_, e);
}

ErrorNorms NormAccumulator::finalize() const {
  ErrorNorms n;
  if (sum_w_ > 0.0) {
    n.l1 = sum_1_ / sum_w_;
    n.l2 = std::sqrt(sum_2_ / sum_w_);
  }
  n.linf = max_;
  return n;
}

double observed_order(double e_coarse, double e_fine, double h_coarse,
                      double h_fine) {
  if (e_coarse <= 0.0 || e_fine <= 0.0 || h_coarse <= h_fine || h_fine <= 0.0)
    return 0.0;
  return std::log(e_coarse / e_fine) / std::log(h_coarse / h_fine);
}

namespace {

ObservedOrder pair_order(const LevelResult& c, const LevelResult& f) {
  return {observed_order(c.error.l1, f.error.l1, c.h, f.h),
          observed_order(c.error.l2, f.error.l2, c.h, f.h),
          observed_order(c.error.linf, f.error.linf, c.h, f.h)};
}

bool order_in_band(const StudyConfig& cfg, double p) {
  return p >= cfg.design_order - cfg.tolerance &&
         p <= cfg.design_order + cfg.upper_band();
}

}  // namespace

StudyResult run_convergence_study(const StudyConfig& cfg,
                                  std::size_t n_levels,
                                  const LevelRunner& runner) {
  CAT_REQUIRE(n_levels >= 1, "study needs at least one level");
  if (cfg.kind == StudyKind::kOrder)
    CAT_REQUIRE(n_levels >= cfg.gate_pairs + 1,
                "order study needs gate_pairs + 1 levels");
  if (cfg.kind == StudyKind::kFunctionalOrder)
    CAT_REQUIRE(n_levels >= cfg.gate_pairs + 2,
                "functional-order study needs gate_pairs + 2 levels");

  StudyResult out;
  out.config = cfg;
  out.levels.reserve(n_levels);
  for (std::size_t level = 0; level < n_levels; ++level) {
    const auto t0 = std::chrono::steady_clock::now();
    LevelResult lr = runner(level);
    lr.cost_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    out.levels.push_back(lr);
  }

  char buf[256];
  switch (cfg.kind) {
    case StudyKind::kOrder: {
      for (std::size_t k = 0; k + 1 < out.levels.size(); ++k)
        out.orders.push_back(pair_order(out.levels[k], out.levels[k + 1]));
      out.passed = true;
      const std::size_t first_gated = out.orders.size() - cfg.gate_pairs;
      for (std::size_t k = first_gated; k < out.orders.size(); ++k) {
        if (!order_in_band(cfg, out.orders[k].l2)) out.passed = false;
      }
      std::snprintf(buf, sizeof buf,
                    "observed L2 order on the %zu finest pairs:", cfg.gate_pairs);
      out.detail = buf;
      for (std::size_t k = first_gated; k < out.orders.size(); ++k) {
        std::snprintf(buf, sizeof buf, " %.3f", out.orders[k].l2);
        out.detail += buf;
      }
      std::snprintf(buf, sizeof buf, " (design %.2f -%.2f/+%.2f)",
                    cfg.design_order, cfg.tolerance, cfg.upper_band());
      out.detail += buf;
      break;
    }
    case StudyKind::kExactness: {
      const double linf = out.levels.front().error.linf;
      out.passed = linf <= cfg.exact_tolerance;
      std::snprintf(buf, sizeof buf,
                    "max deviation %.3e from the manufactured solution "
                    "(gate %.1e)",
                    linf, cfg.exact_tolerance);
      out.detail = buf;
      break;
    }
    case StudyKind::kReport:
    case StudyKind::kFunctionalOrder: {
      for (std::size_t k = 0; k + 2 < out.levels.size(); ++k) {
        const double d1 =
            out.levels[k].functional - out.levels[k + 1].functional;
        const double d2 =
            out.levels[k + 1].functional - out.levels[k + 2].functional;
        const double r = out.levels[k].h / out.levels[k + 1].h;
        ObservedOrder o;
        if (d1 * d2 > 0.0 && r > 1.0)
          o.l1 = o.l2 = o.linf = std::log(d1 / d2) / std::log(r);
        out.orders.push_back(o);
      }
      if (!out.orders.empty() && out.orders.back().l2 > 0.0) {
        const LevelResult& f = out.levels.back();
        const LevelResult& c = out.levels[out.levels.size() - 2];
        const double r = c.h / f.h;
        const double p = out.orders.back().l2;
        out.richardson = f.functional + (f.functional - c.functional) /
                                            (std::pow(r, p) - 1.0);
      }
      if (cfg.kind == StudyKind::kReport) {
        out.passed = true;  // reported, not gated
        std::snprintf(buf, sizeof buf,
                      "functional ladder (not gated); Richardson estimate %.6g",
                      out.richardson);
        out.detail = buf;
        break;
      }
      // kFunctionalOrder: gate the self-convergence order of the finest
      // triplets exactly as kOrder gates the exact-error pairs.
      out.passed = out.orders.size() >= cfg.gate_pairs;
      const std::size_t first_gated =
          out.orders.size() >= cfg.gate_pairs
              ? out.orders.size() - cfg.gate_pairs
              : 0;
      for (std::size_t k = first_gated; k < out.orders.size(); ++k) {
        if (!order_in_band(cfg, out.orders[k].l2)) out.passed = false;
      }
      std::snprintf(buf, sizeof buf,
                    "functional self-convergence order on the %zu finest "
                    "triplets:",
                    cfg.gate_pairs);
      out.detail = buf;
      for (std::size_t k = first_gated; k < out.orders.size(); ++k) {
        std::snprintf(buf, sizeof buf, " %.3f", out.orders[k].l2);
        out.detail += buf;
      }
      std::snprintf(buf, sizeof buf,
                    " (design %.2f -%.2f/+%.2f; Richardson %.6g)",
                    cfg.design_order, cfg.tolerance, cfg.upper_band(),
                    out.richardson);
      out.detail += buf;
      break;
    }
  }
  return out;
}

io::Table StudyResult::order_table() const {
  io::Table t(config.name);
  t.set_columns({"level", "n", "h", "err_l1", "err_l2", "err_linf",
                 "functional", "order_l2", "cost_s"});
  for (std::size_t k = 0; k < levels.size(); ++k) {
    const LevelResult& l = levels[k];
    double p = 0.0;
    if (config.kind == StudyKind::kOrder && k >= 1)
      p = orders[k - 1].l2;
    if ((config.kind == StudyKind::kReport ||
         config.kind == StudyKind::kFunctionalOrder) &&
        k >= 2)
      p = orders[k - 2].l2;
    t.add_row({static_cast<double>(k), static_cast<double>(l.n), l.h,
               l.error.l1, l.error.l2, l.error.linf, l.functional, p,
               l.cost_seconds});
  }
  return t;
}

}  // namespace cat::verify
