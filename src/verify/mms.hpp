#pragma once
/// \file mms.hpp
/// Method of Manufactured Solutions: analytic fields and exact source
/// terms for the formal order-of-accuracy verification of the solver
/// hierarchy (src/verify).
///
/// A manufactured solution is a smooth closed-form field chosen first;
/// substituting it into the governing equations leaves an analytic
/// residual, which is injected back into the discrete solver through its
/// SourceHook so the manufactured field becomes the exact solution of the
/// forced problem. Discretization error is then directly measurable on
/// any grid, and a refinement ladder yields the observed order of
/// accuracy (the standard verification practice of modern aerothermal
/// codes; cf. ROADMAP and the Stetson/US3D verification frameworks in
/// PAPERS.md).
///
/// Everything here is hand-differentiated; test_verify cross-checks every
/// source term against central finite differences of the analytic fluxes
/// so a derivation slip cannot silently pass.

#include <array>

#include "solvers/vsl/vsl.hpp"

namespace cat::verify {

/// One scalar manufactured component:
///   phi(x, y) = c0 + amp * sin(kx x + ky y + phase).
/// Keeping (kx x + ky y + phase) inside a monotone branch of sin over the
/// domain keeps every sweep line of the field monotone, so TVD limiters
/// never clip at interior extrema and the second-order design of the
/// MUSCL scheme is observable.
struct TrigField {
  double c0 = 0.0, amp = 0.0, kx = 0.0, ky = 0.0, phase = 0.0;

  double v(double x, double y) const;
  double dx(double x, double y) const;
  double dy(double x, double y) const;
  double dyy(double x, double y) const;
};

/// Manufactured primitive field for the planar finite-volume Euler /
/// thin-layer Navier-Stokes solvers with a calorically perfect gas.
/// rho and p share (kx, ky, phase) so the reconstructed internal energy
/// e = p / ((gamma-1) rho) is also monotone along sweep lines.
struct FvManufactured {
  TrigField rho, u, v, p;
  double gamma = 1.4;
  double r_gas = 287.053;
  double prandtl = 0.72;

  /// Primitive state [rho, u, v, e] the solver reconstructs.
  std::array<double, 4> primitive(double x, double y) const;
  double temperature(double x, double y) const;

  /// Exact convective fluxes (for the finite-difference self-check).
  std::array<double, 4> convective_flux_x(double x, double y) const;
  std::array<double, 4> convective_flux_y(double x, double y) const;
  /// Exact thin-layer viscous flux through a +y face (Sutherland mu,
  /// constant-Pr conduction — the solver's model, not full NS).
  std::array<double, 4> thin_layer_flux_y(double x, double y) const;

  /// Steady source density S = div F_conv  (planar Euler).
  std::array<double, 4> euler_source(double x, double y) const;
  /// Steady source density S = div F_conv - d/dy F_visc  (thin-layer NS).
  std::array<double, 4> ns_source(double x, double y) const;
};

/// The catalog's standard fields. Domain [0, extent]^2; the Euler field is
/// supersonic in +x (Dirichlet data at the outflow is never upwinded), the
/// NS field adds a low-density state so the viscous terms carry O(10%) of
/// the flux balance and their discretization error is observable.
FvManufactured supersonic_euler_field();
FvManufactured viscous_ns_field();
/// Domain edge length matching each field's wavenumbers.
double fv_domain_extent(const FvManufactured& f);

/// Manufactured species mass fractions riding on an FvManufactured flow:
/// y_0 is a TrigField kept well inside (0, 1) and y_1 = 1 - y_0, so the
/// pair sums to one exactly and the solver's clip/renormalize decode is
/// the identity on the manufactured solution. Substituting into the
/// species continuity equation d(rho y_s)/dt + div(rho u y_s) = S_s
/// leaves the steady advective residual
///   S_s = y_s div(rho u) + rho (u dy_s/dx + v dy_s/dy),
/// injected back through the solver's SpeciesSourceHook. With a frozen
/// (reaction-free) mechanism this isolates the order of the species
/// MUSCL/upwind discretization.
struct SpeciesManufactured {
  TrigField y0;

  /// y_s at (x, y); s in {0, 1}.
  double y(std::size_t s, double x, double yy) const;
  /// Exact advective species fluxes rho u y_s / rho v y_s (for the
  /// finite-difference self-check).
  double flux_x(const FvManufactured& flow, std::size_t s, double x,
                double yy) const;
  double flux_y(const FvManufactured& flow, std::size_t s, double x,
                double yy) const;
  /// Steady source density S_s = div(rho u y_s) [kg/(m^3 s)].
  double source(const FvManufactured& flow, std::size_t s, double x,
                double yy) const;
};

/// The catalog's species field for the supersonic Euler flow: the sin
/// argument stays in the same monotone window as the flow primitives and
/// the amplitude keeps y_0 in [0.30, 0.60], far from the [0, 1] clips.
SpeciesManufactured species_transport_field();

/// Manufactured similarity profiles for the parabolic (VSL/PNS/BL)
/// marching core with a constant-property gas and Pr = 1:
///   F(eta) = z + a_f sin(pi z),   g(eta) = g_w + (1-g_w) z + a_g sin(pi z)
/// with z = eta/eta_max — xi-independent, so the streamwise history terms
/// of the march vanish on the manufactured solution and the eta-direction
/// tridiagonal discretization order is isolated.
struct MarchManufactured {
  double eta_max = 8.0;
  double a_f = 0.12;   ///< momentum perturbation amplitude
  double a_g = 0.08;   ///< enthalpy perturbation amplitude
  double g_w = 0.5;    ///< wall enthalpy ratio (matches T_wall cp / H_e)

  double f_profile(double eta) const;      ///< F = u/ue
  double g_profile(double eta) const;      ///< g = H/He
  double f_stream(double eta) const;       ///< f = int_0^eta F
  double fp(double eta) const;             ///< dF/deta
  double gp(double eta) const;             ///< dg/deta
  double fpp(double eta) const;            ///< d2F/deta2
  double gpp(double eta) const;            ///< d2g/deta2

  /// Sources for the marcher's equations (C = 1, Pr = 1, rho_e/rho = 1):
  ///   F'' + f F' + beta (1 - F^2) + S_F = 0
  ///   g'' + f g'                  + S_g = 0
  /// beta is 0.5 at the marcher's station 0 and 0 downstream (constant
  /// edge velocity).
  double momentum_source(double eta, double beta) const;
  double energy_source(double eta) const;
};

/// Constant-property PropertyProvider for the march verification: density
/// rho_c, viscosity mu_c, Prandtl 1, h = cp T.
solvers::PropertyProvider make_constant_props(double rho_c, double mu_c,
                                              double cp);

/// Streamwise (dxi) manufactured solution for the parabolic marching
/// core: the similarity profiles are modulated along the body,
///   F(eta, s) = z + [a_f + a_x phi(s)] sin(pi z)
///   g(eta, s) = g_w + (1 - g_w) z + [a_g + a_gx psi(s)] sin(pi z)
/// with z = eta/eta_max and phi/psi = sin(k s + phase), so the history
/// terms 2 xi F F_xi, 2 xi F g_xi and the xi f_xi convective addition are
/// all nonzero and the streamwise difference order of the march is
/// directly observable (the xi-independent MarchManufactured made every
/// history term vanish — which is exactly how the BDF1 march stayed
/// hidden behind the second-order eta sweeps until PR 5).
///
/// Edges carry a linear ue(s) = u0 + u1 (s - s0) — the marcher's
/// trapezoidal xi quadrature is exact for it, so xi(s) is analytic — and
/// a prescribed Vigneron fraction omega(s), so the PNS splitting path
/// beta = omega * clamp(2 xi / ue * due/dxi) is exercised with a
/// manufactured beta_eff that the discrete backward difference must
/// reproduce at design order. With the constant-property Pr = 1 gas
/// (make_constant_props) the marcher's continuum equations reduce to
///   F'' + (f + xi f_xi) F' + beta_eff (1 - F^2) - 2 xi F F_xi + S_F = 0
///   g'' + (f + xi f_xi) g'                      - 2 xi F g_xi + S_g = 0
/// downstream, and to the pinned beta = 0.5 similarity equations (no
/// history terms) at station 0.
struct MarchStreamwiseManufactured {
  double eta_max = 8.0;
  double a_f = 0.12, a_g = 0.08, g_w = 0.5;
  double a_x = 0.15;   ///< streamwise momentum modulation amplitude
  double a_gx = 0.10;  ///< streamwise enthalpy modulation amplitude
  double k_f = 0.40, phase_f = 0.3;
  double k_g = 0.55, phase_g = 1.1;
  /// Constant-property gas and edge law.
  double cp = 1000.0, h_total = 1.2e6;
  double rho_c = 0.05, mu_c = 2.0e-4, r_body = 0.5;
  double p_edge = 1000.0;
  double s0 = 1.0, s_end = 9.0;
  double u0 = 200.0, u1 = 0.0;        ///< ue(s) = u0 + u1 (s - s0)
  double omega0 = 1.0, omega1 = 0.0;  ///< omega(s) = omega0 + omega1 (s - s0)

  double ue(double s) const;
  double omega(double s) const;
  /// The marcher's own xi(s): stagnation startup 0.25 f(s0) s0 plus the
  /// (exact) trapezoid of the linear integrand f = rho mu ue r^2.
  double xi(double s) const;
  double dxi_ds(double s) const;
  /// Analytic beta the discrete march must reproduce downstream:
  /// omega(s) * (2 xi / ue) due/dxi (the clamp window is never active
  /// for the catalog parameters; asserted by the study).
  double beta_eff(double s) const;

  double F(double eta, double s) const;
  double g(double eta, double s) const;
  double F_eta(double eta, double s) const;
  double F_etaeta(double eta, double s) const;
  double g_eta(double eta, double s) const;
  double g_etaeta(double eta, double s) const;
  double f_stream(double eta, double s) const;   ///< int_0^eta F
  double F_xi(double eta, double s) const;
  double g_xi(double eta, double s) const;
  double f_stream_xi(double eta, double s) const;

  /// Manufactured forcing for MarchOptions::momentum_source /
  /// energy_source. station0 = true drops the history terms and pins
  /// beta = 0.5 (the marcher's similarity start at its first station).
  double momentum_source(double eta, double s, bool station0) const;
  double energy_source(double eta, double s, bool station0) const;

  /// Edge-station row for the marcher at arc position s.
  solvers::MarchEdge edge(double s) const;
  double t_wall() const { return g_w * h_total / cp; }
  /// Exact wall heat flux at station s (C = C/Pr = 1 at the wall).
  double q_wall_exact(double s) const;
};

}  // namespace cat::verify
