#pragma once
/// \file ode.hpp
/// ODE integrators: explicit RK4, adaptive RKF45, and an implicit stiff
/// integrator (backward Euler / BDF2 with damped Newton).
///
/// CAT needs all three regimes (paper, "STATUS OF CAT"): trajectories and
/// inviscid relaxation are non-stiff; finite-rate chemistry spans rate
/// scales "many orders of magnitude wider than the mean-flow time scale" —
/// the single most complicating factor — and demands an implicit method.
///
/// Hot-path convention: StiffIntegrator has a span-based integrate overload
/// taking a caller-owned StiffWorkspace, so repeated integrations (one per
/// reactor advance / operator-split cell) reuse the Jacobian, Newton and LU
/// storage and allocate nothing in the stepping loop.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "numerics/linalg.hpp"

namespace cat::numerics {

/// Right-hand side f(t, y, dy/dt). dydt is preallocated to y.size().
using OdeRhs =
    std::function<void(double t, std::span<const double> y, std::span<double> dydt)>;

/// Analytic Jacobian J = df/dy (optional for the stiff integrator; a
/// finite-difference Jacobian is used when absent).
using OdeJacobian =
    std::function<void(double t, std::span<const double> y, Matrix& jac)>;

/// One classical 4th-order Runge-Kutta step from t to t+h (y updated).
void rk4_step(const OdeRhs& f, double t, double h, std::vector<double>& y);

/// Integrate from t0 to t1 with fixed-step RK4 (nsteps steps).
void integrate_rk4(const OdeRhs& f, double t0, double t1, std::size_t nsteps,
                   std::vector<double>& y);

/// Options for the adaptive integrators.
struct AdaptiveOptions {
  double rel_tol = 1e-8;
  double abs_tol = 1e-10;
  double h_initial = 0.0;     ///< 0 => (t1-t0)/100
  double h_min = 0.0;         ///< 0 => 1e-14 * |t1-t0|
  std::size_t max_steps = 2'000'000;
};

/// Dense observer: called after every accepted step with (t, y).
using OdeObserver = std::function<void(double t, std::span<const double> y)>;

/// Adaptive Runge-Kutta-Fehlberg 4(5). Returns the number of accepted steps.
/// Throws cat::SolverError when the step size underflows or max_steps is hit.
std::size_t integrate_rkf45(const OdeRhs& f, double t0, double t1,
                            std::vector<double>& y,
                            const AdaptiveOptions& opt = {},
                            const OdeObserver& observer = nullptr);

/// Options for StiffIntegrator (namespace scope so it can serve as a
/// default argument; GCC requires nested-class member initializers to be
/// complete before such use).
struct StiffOptions {
  double rel_tol = 1e-6;
  double abs_tol = 1e-12;
  double h_initial = 1e-10;
  double h_max = 0.0;          ///< 0 => no cap
  std::size_t max_steps = 500'000;
  std::size_t max_newton = 12;
  bool use_bdf2 = true;        ///< second order after startup
  /// Forced step size for the verification harness: when positive the
  /// integrator takes uniform steps of exactly this size (final step
  /// clipped to t1) with local-error control disabled, so observed-order
  /// studies can halve the step on a ladder. A Newton failure is then a
  /// hard error instead of a step-size retreat.
  double fixed_step = 0.0;
};

/// Reusable scratch state for StiffIntegrator: Jacobian and Newton
/// iteration matrices, LU pivots, stage vectors, and finite-difference
/// Jacobian buffers. Hold one per integration context and pass it to the
/// span-based integrate overload: every allocation then happens at most
/// once (first use / growth), and repeated integrations — e.g. one per
/// reactor advance or per operator-split cell — run allocation-free.
struct StiffWorkspace {
  Matrix jac, iter_matrix;
  std::vector<double> fval, res, ynew, yprev, lu_scratch;
  std::vector<double> fd_yp, fd_f0, fd_f1;  // finite-difference Jacobian
  std::vector<std::size_t> piv;

  /// Ensure capacity for an n-dimensional system (no-op when sized).
  void resize(std::size_t n);
};

/// Implicit stiff integrator: variable-step backward Euler (order 1) with a
/// BDF2 finisher, damped-Newton inner iterations, and step-size control on
/// the Newton convergence rate. Designed for chemical-kinetics source terms.
class StiffIntegrator {
 public:
  using Options = StiffOptions;

  StiffIntegrator(OdeRhs f, OdeJacobian jac = nullptr, Options opt = {});

  /// Integrate y from t0 to t1 in place. Span-based fast path: with a
  /// caller-owned workspace the inner loop performs zero heap allocations
  /// (given an allocation-free RHS). Returns accepted step count.
  std::size_t integrate(double t0, double t1, std::span<double> y,
                        StiffWorkspace& ws,
                        const OdeObserver& observer = nullptr) const;

  /// Convenience overload with a per-call workspace.
  std::size_t integrate(double t0, double t1, std::vector<double>& y,
                        const OdeObserver& observer = nullptr) const;

 private:
  OdeRhs f_;
  OdeJacobian jac_;
  Options opt_;

  void numerical_jacobian(double t, std::span<const double> y,
                          StiffWorkspace& ws) const;
};

}  // namespace cat::numerics
