#include "numerics/quadrature.hpp"

#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace cat::numerics {

double trapz(std::span<const double> x, std::span<const double> y) {
  CAT_REQUIRE(x.size() == y.size(), "trapz size mismatch");
  CAT_REQUIRE(x.size() >= 2, "trapz needs at least two samples");
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i)
    acc += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  return acc;
}

double trapz(const std::function<double(double)>& f, double a, double b,
             std::size_t n) {
  CAT_REQUIRE(n > 0, "trapz needs n > 0");
  const double h = (b - a) / static_cast<double>(n);
  double acc = 0.5 * (f(a) + f(b));
  for (std::size_t i = 1; i < n; ++i) acc += f(a + h * static_cast<double>(i));
  return acc * h;
}

double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n) {
  CAT_REQUIRE(n > 0, "simpson needs n > 0");
  if (n % 2 != 0) ++n;
  const double h = (b - a) / static_cast<double>(n);
  double acc = f(a) + f(b);
  for (std::size_t i = 1; i < n; ++i) {
    const double w = (i % 2 == 1) ? 4.0 : 2.0;
    acc += w * f(a + h * static_cast<double>(i));
  }
  return acc * h / 3.0;
}

void gauss_legendre(std::size_t n, std::vector<double>& nodes,
                    std::vector<double>& weights) {
  CAT_REQUIRE(n >= 1, "need at least one node");
  nodes.assign(n, 0.0);
  weights.assign(n, 0.0);
  const std::size_t m = (n + 1) / 2;
  for (std::size_t i = 0; i < m; ++i) {
    // Chebyshev-based initial guess, then Newton on P_n.
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    bool converged = false;
    for (int iter = 0; iter < 100; ++iter) {
      double p0 = 1.0, p1 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * static_cast<double>(j) + 1.0) * x * p1 -
              static_cast<double>(j) * p2) /
             (static_cast<double>(j) + 1.0);
      }
      pp = static_cast<double>(n) * (x * p0 - p1) / (x * x - 1.0);
      const double dx = p0 / pp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      // Newton from the Chebyshev seed converges in a handful of steps for
      // every reachable n; exhausting the budget means the node (and with
      // it every downstream quadrature) would be silently inaccurate.
      throw SolverError("gauss_legendre: Newton failed to converge on a "
                        "Legendre root");
    }
    nodes[i] = -x;
    nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    weights[i] = w;
    weights[n - 1 - i] = w;
  }
}

double gauss(const std::function<double(double)>& f, double a, double b,
             std::size_t n) {
  std::vector<double> x, w;
  gauss_legendre(n, x, w);
  const double mid = 0.5 * (a + b), half = 0.5 * (b - a);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += w[i] * f(mid + half * x[i]);
  return acc * half;
}

double expint_e1(double x) {
  CAT_REQUIRE(x > 0.0, "E1 requires x > 0");
  constexpr double euler = 0.5772156649015328606;
  if (x <= 1.0) {
    // Power series: E1(x) = -gamma - ln x + sum_{k>=1} (-1)^{k+1} x^k/(k k!)
    double sum = 0.0, term = 1.0;
    for (int k = 1; k <= 60; ++k) {
      term *= -x / static_cast<double>(k);
      const double add = -term / static_cast<double>(k);
      sum += add;
      if (std::fabs(add) < 1e-18 * std::fabs(sum)) break;
    }
    return -euler - std::log(x) + sum;
  }
  // Continued fraction (Lentz) for x > 1.
  const double tiny = 1e-300;
  double b = x + 1.0, c = 1.0 / tiny, d = 1.0 / b, h = d;
  for (int i = 1; i <= 200; ++i) {
    const double a = -static_cast<double>(i) * static_cast<double>(i);
    b += 2.0;
    d = a * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + a / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = c * d;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x);
}

double expint_en(int n, double x) {
  CAT_REQUIRE(n >= 1, "E_n requires n >= 1");
  CAT_REQUIRE(x >= 0.0, "E_n requires x >= 0");
  if (x == 0.0) {
    CAT_REQUIRE(n > 1, "E1(0) diverges");
    return 1.0 / static_cast<double>(n - 1);
  }
  if (x > 700.0) return 0.0;  // exp(-x) underflows anyway
  double e = expint_e1(x);
  // Upward recurrence: E_{n+1}(x) = (e^{-x} - x E_n(x)) / n  — stable for
  // the small n (2, 3) used by the tangent-slab solver.
  for (int k = 1; k < n; ++k)
    e = (std::exp(-x) - x * e) / static_cast<double>(k);
  return e;
}

}  // namespace cat::numerics
