#include "numerics/tridiag.hpp"

#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace cat::numerics {

namespace {

/// Scale-invariant singularity test: a pivot is usable only when it is not
/// negligible against the magnitude of its own row. An absolute cutoff
/// (the old `fabs(beta) < 1e-300`) accepted pivots that were pure rounding
/// noise in well-scaled rows — returning garbage for near-singular
/// boundary-layer systems — while a healthy system scaled by ~1e-305 would
/// have been rejected. Rejects NaN pivots too (the comparison is false).
constexpr double kPivotRelTol = 100.0 * std::numeric_limits<double>::epsilon();

bool pivot_usable(double pivot, double row_scale) {
  return std::fabs(pivot) > kPivotRelTol * row_scale;
}

}  // namespace

std::vector<double> solve_tridiagonal(std::span<const double> a,
                                      std::span<const double> b,
                                      std::span<const double> c,
                                      std::span<const double> d) {
  const std::size_t n = b.size();
  CAT_REQUIRE(n > 0, "empty system");
  CAT_REQUIRE(a.size() == n && c.size() == n && d.size() == n,
              "tridiagonal band size mismatch");
  std::vector<double> cp(n), dp(n), x(n);
  double beta = b[0];
  if (!pivot_usable(beta, std::fabs(b[0]) + std::fabs(c[0]))) {
    throw SolverError("tridiag: singular pivot in row 0");
  }
  cp[0] = c[0] / beta;
  dp[0] = d[0] / beta;
  for (std::size_t i = 1; i < n; ++i) {
    beta = b[i] - a[i] * cp[i - 1];
    const double row_scale =
        std::fabs(a[i]) + std::fabs(b[i]) + std::fabs(c[i]);
    if (!pivot_usable(beta, row_scale)) {
      throw SolverError("tridiag: singular pivot in row " + std::to_string(i));
    }
    cp[i] = c[i] / beta;
    dp[i] = (d[i] - a[i] * dp[i - 1]) / beta;
  }
  x[n - 1] = dp[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) x[i] = dp[i] - cp[i] * x[i + 1];
  return x;
}

BlockTridiagonal::BlockTridiagonal(std::size_t n, std::size_t m)
    : n_(n), m_(m), d_(n * m, 0.0) {
  CAT_REQUIRE(n > 0 && m > 0, "empty block system");
  a_.assign(n, Matrix(m, m));
  b_.assign(n, Matrix(m, m));
  c_.assign(n, Matrix(m, m));
}

std::vector<double> BlockTridiagonal::solve() {
  // Block Thomas: eliminate the sub-diagonal block row by row, factorizing
  // the running diagonal block, then back-substitute.
  std::vector<Matrix> gamma(n_);  // gamma[i] = B~[i]^{-1} C[i]
  std::vector<std::vector<double>> g(n_);

  LuFactor f0(b_[0]);
  gamma[0] = f0.solve(c_[0]);
  g[0] = f0.solve(rhs(0));

  for (std::size_t i = 1; i < n_; ++i) {
    // B~[i] = B[i] - A[i] gamma[i-1];  d~[i] = d[i] - A[i] g[i-1]
    Matrix btilde = b_[i];
    btilde -= a_[i] * gamma[i - 1];
    std::vector<double> dtilde(rhs(i).begin(), rhs(i).end());
    const std::vector<double> ag = a_[i] * std::span<const double>(g[i - 1]);
    for (std::size_t k = 0; k < m_; ++k) dtilde[k] -= ag[k];
    LuFactor f(btilde);
    if (i + 1 < n_) gamma[i] = f.solve(c_[i]);
    g[i] = f.solve(dtilde);
  }

  std::vector<double> x(n_ * m_);
  for (std::size_t k = 0; k < m_; ++k) x[(n_ - 1) * m_ + k] = g[n_ - 1][k];
  for (std::size_t i = n_ - 1; i-- > 0;) {
    std::vector<double> xi = g[i];
    const std::span<const double> xnext{x.data() + (i + 1) * m_, m_};
    const std::vector<double> gx = gamma[i] * xnext;
    for (std::size_t k = 0; k < m_; ++k) x[i * m_ + k] = xi[k] - gx[k];
  }
  return x;
}

std::vector<double> solve_periodic_tridiagonal(std::span<const double> a,
                                               std::span<const double> b,
                                               std::span<const double> c,
                                               std::span<const double> d) {
  const std::size_t n = b.size();
  CAT_REQUIRE(n >= 3, "periodic system needs n >= 3");
  CAT_REQUIRE(a.size() == n && c.size() == n && d.size() == n,
              "periodic band size mismatch");
  // Sherman-Morrison: write A_periodic = A_trunc + u v^T with
  // u = (gamma, 0, ..., 0, c[n-1])^T, v = (1, 0, ..., 0, a[0]/gamma)^T.
  const double gamma = -b[0];
  std::vector<double> bb(b.begin(), b.end());
  bb[0] -= gamma;
  bb[n - 1] -= a[0] * c[n - 1] / gamma;

  std::vector<double> x = solve_tridiagonal(a, bb, c, d);
  std::vector<double> u(n, 0.0);
  u[0] = gamma;
  u[n - 1] = c[n - 1];
  std::vector<double> z = solve_tridiagonal(a, bb, c, u);

  const double vx = x[0] + a[0] / gamma * x[n - 1];
  const double vz = 1.0 + z[0] + a[0] / gamma * z[n - 1];
  const double vz_scale =
      1.0 + std::fabs(z[0]) + std::fabs(a[0] / gamma * z[n - 1]);
  if (!pivot_usable(vz, vz_scale)) {
    throw SolverError("periodic tridiag: Sherman-Morrison breakdown");
  }
  const double factor = vx / vz;
  for (std::size_t i = 0; i < n; ++i) x[i] -= factor * z[i];
  return x;
}

}  // namespace cat::numerics
