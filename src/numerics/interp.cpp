#include "numerics/interp.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace cat::numerics {

namespace {
void check_monotone(std::span<const double> x) {
  CAT_REQUIRE(x.size() >= 2, "need at least two nodes");
  for (std::size_t i = 1; i < x.size(); ++i)
    CAT_REQUIRE(x[i] > x[i - 1], "abscissae must be strictly increasing");
}
}  // namespace

LinearInterp::LinearInterp(std::vector<double> x, std::vector<double> y,
                           bool extrapolate)
    : x_(std::move(x)), y_(std::move(y)), extrapolate_(extrapolate) {
  CAT_REQUIRE(x_.size() == y_.size(), "x/y size mismatch");
  check_monotone(x_);
}

std::size_t LinearInterp::locate(double x) const {
  // Index of left node of the containing interval, clamped to [0, n-2].
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::ptrdiff_t idx = std::distance(x_.begin(), it) - 1;
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(x_.size()) - 2));
}

double LinearInterp::operator()(double x) const {
  if (!extrapolate_) x = std::clamp(x, x_.front(), x_.back());
  const std::size_t i = locate(x);
  const double t = (x - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double LinearInterp::derivative(double x) const {
  const std::size_t i = locate(std::clamp(x, x_.front(), x_.back()));
  return (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
}

Pchip::Pchip(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  CAT_REQUIRE(x_.size() == y_.size(), "x/y size mismatch");
  check_monotone(x_);
  const std::size_t n = x_.size();
  std::vector<double> h(n - 1), delta(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    h[i] = x_[i + 1] - x_[i];
    delta[i] = (y_[i + 1] - y_[i]) / h[i];
  }
  m_.assign(n, 0.0);
  // Fritsch-Carlson: harmonic-mean interior slopes; zero at local extrema.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (delta[i - 1] * delta[i] > 0.0) {
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      m_[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
    }
  }
  // One-sided endpoint slopes (shape-preserving three-point formula).
  auto endpoint = [](double h0, double h1, double d0, double d1) {
    double m = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (m * d0 <= 0.0) {
      m = 0.0;
    } else if (d0 * d1 <= 0.0 && std::fabs(m) > 3.0 * std::fabs(d0)) {
      m = 3.0 * d0;
    }
    return m;
  };
  if (n == 2) {
    m_[0] = m_[1] = delta[0];
  } else {
    m_[0] = endpoint(h[0], h[1], delta[0], delta[1]);
    m_[n - 1] = endpoint(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
  }
}

std::size_t Pchip::locate(double x) const {
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::ptrdiff_t idx = std::distance(x_.begin(), it) - 1;
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(x_.size()) - 2));
}

double Pchip::operator()(double x) const {
  x = std::clamp(x, x_.front(), x_.back());
  const std::size_t i = locate(x);
  const double h = x_[i + 1] - x_[i];
  const double t = (x - x_[i]) / h;
  const double t2 = t * t, t3 = t2 * t;
  const double h00 = 2 * t3 - 3 * t2 + 1;
  const double h10 = t3 - 2 * t2 + t;
  const double h01 = -2 * t3 + 3 * t2;
  const double h11 = t3 - t2;
  return h00 * y_[i] + h10 * h * m_[i] + h01 * y_[i + 1] + h11 * h * m_[i + 1];
}

double Pchip::derivative(double x) const {
  x = std::clamp(x, x_.front(), x_.back());
  const std::size_t i = locate(x);
  const double h = x_[i + 1] - x_[i];
  const double t = (x - x_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6 * t2 - 6 * t) / h;
  const double dh10 = 3 * t2 - 4 * t + 1;
  const double dh01 = (-6 * t2 + 6 * t) / h;
  const double dh11 = 3 * t2 - 2 * t;
  return dh00 * y_[i] + dh10 * m_[i] + dh01 * y_[i + 1] + dh11 * m_[i + 1];
}

BilinearTable::BilinearTable(double x0, double dx, std::size_t nx, double y0,
                             double dy, std::size_t ny)
    : x0_(x0), dx_(dx), y0_(y0), dy_(dy), nx_(nx), ny_(ny), v_(nx * ny, 0.0) {
  CAT_REQUIRE(nx >= 2 && ny >= 2, "table needs at least 2x2 nodes");
  CAT_REQUIRE(dx > 0.0 && dy > 0.0, "spacings must be positive");
}

double BilinearTable::operator()(double x, double y) const {
  // Clamp into the grid, then clamp the *cell index* (not the fractional
  // coordinate) to the last cell. A query exactly on the last grid line
  // lands in the final cell with t == 1 and reproduces the stored node
  // value bit-exactly; the previous `(n-1) - 1e-12` fudge perturbed every
  // upper-edge query by ~1e-12 of the node spread. Interior queries are
  // bitwise unchanged.
  const double fx =
      std::clamp((x - x0_) / dx_, 0.0, static_cast<double>(nx_ - 1));
  const double fy =
      std::clamp((y - y0_) / dy_, 0.0, static_cast<double>(ny_ - 1));
  const std::size_t i = std::min(static_cast<std::size_t>(fx), nx_ - 2);
  const std::size_t j = std::min(static_cast<std::size_t>(fy), ny_ - 2);
  const double tx = fx - static_cast<double>(i);
  const double ty = fy - static_cast<double>(j);
  return (1 - tx) * (1 - ty) * at(i, j) + tx * (1 - ty) * at(i + 1, j) +
         (1 - tx) * ty * at(i, j + 1) + tx * ty * at(i + 1, j + 1);
}

}  // namespace cat::numerics
