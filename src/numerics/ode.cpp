#include "numerics/ode.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace cat::numerics {

// cat-lint: allow-alloc (explicit RK helpers serve the verification and
// trajectory layers; the chemistry hot path uses StiffIntegrator with a
// caller-held StiffWorkspace)
void rk4_step(const OdeRhs& f, double t, double h, std::vector<double>& y) {
  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
  f(t + 0.5 * h, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
  f(t + 0.5 * h, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * k3[i];
  f(t + h, tmp, k4);
  for (std::size_t i = 0; i < n; ++i)
    y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

void integrate_rk4(const OdeRhs& f, double t0, double t1, std::size_t nsteps,
                   std::vector<double>& y) {
  CAT_REQUIRE(nsteps > 0, "nsteps must be positive");
  const double h = (t1 - t0) / static_cast<double>(nsteps);
  double t = t0;
  for (std::size_t s = 0; s < nsteps; ++s, t = t0 + (s * (t1 - t0)) / nsteps)
    rk4_step(f, t, h, y);
}

namespace {
// Fehlberg 4(5) tableau.
constexpr double kA[6][5] = {
    {0, 0, 0, 0, 0},
    {1.0 / 4, 0, 0, 0, 0},
    {3.0 / 32, 9.0 / 32, 0, 0, 0},
    {1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197, 0, 0},
    {439.0 / 216, -8.0, 3680.0 / 513, -845.0 / 4104, 0},
    {-8.0 / 27, 2.0, -3544.0 / 2565, 1859.0 / 4104, -11.0 / 40}};
constexpr double kC[6] = {0, 1.0 / 4, 3.0 / 8, 12.0 / 13, 1.0, 0.5};
constexpr double kB5[6] = {16.0 / 135,      0, 6656.0 / 12825,
                           28561.0 / 56430, -9.0 / 50, 2.0 / 55};
constexpr double kB4[6] = {25.0 / 216, 0, 1408.0 / 2565, 2197.0 / 4104,
                           -1.0 / 5, 0};
}  // namespace

std::size_t integrate_rkf45(const OdeRhs& f, double t0, double t1,
                            std::vector<double>& y, const AdaptiveOptions& opt,
                            const OdeObserver& observer) {
  const std::size_t n = y.size();
  const double span = t1 - t0;
  CAT_REQUIRE(span != 0.0, "degenerate integration interval");
  const double dir = span > 0 ? 1.0 : -1.0;
  double h = opt.h_initial != 0.0 ? opt.h_initial : span / 100.0;
  const double h_min =
      opt.h_min != 0.0 ? opt.h_min : 1e-14 * std::fabs(span);

  // cat-lint: allow-alloc (per-integration setup of the adaptive RK45
  // stage buffers; not the chemistry hot path)
  std::vector<std::vector<double>> k(6, std::vector<double>(n));
  std::vector<double> ytmp(n), y5(n), y4(n);  // cat-lint: allow-alloc
  double t = t0;
  std::size_t accepted = 0;

  for (std::size_t step = 0; step < opt.max_steps; ++step) {
    if ((t - t1) * dir >= 0.0) return accepted;
    if ((t + h - t1) * dir > 0.0) h = t1 - t;  // land exactly on t1

    for (int s = 0; s < 6; ++s) {
      for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i];
        for (int j = 0; j < s; ++j) acc += h * kA[s][j] * k[j][i];
        ytmp[i] = acc;
      }
      f(t + kC[s] * h, ytmp, k[s]);
    }
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double d5 = y[i], d4 = y[i];
      for (int s = 0; s < 6; ++s) {
        d5 += h * kB5[s] * k[s][i];
        d4 += h * kB4[s] * k[s][i];
      }
      y5[i] = d5;
      y4[i] = d4;
      const double scale =
          opt.abs_tol + opt.rel_tol * std::max(std::fabs(y[i]), std::fabs(d5));
      const double e = (d5 - d4) / scale;
      err += e * e;
    }
    err = std::sqrt(err / static_cast<double>(n));

    if (err <= 1.0 || std::fabs(h) <= h_min) {
      t += h;
      y = y5;
      ++accepted;
      if (observer) observer(t, y);
    }
    const double safety = 0.9;
    double factor =
        err > 0.0 ? safety * std::pow(err, -0.2) : 5.0;
    factor = std::clamp(factor, 0.2, 5.0);
    h *= factor;
    if (std::fabs(h) < h_min) h = h_min * dir;
  }
  throw SolverError("integrate_rkf45: max_steps exceeded");
}

StiffIntegrator::StiffIntegrator(OdeRhs f, OdeJacobian jac, Options opt)
    : f_(std::move(f)), jac_(std::move(jac)), opt_(opt) {}

// cat-lint: allow-alloc (this IS the designated growth point: capacity is
// established here once and every later call is a no-op)
void StiffWorkspace::resize(std::size_t n) {
  if (jac.rows() != n) {
    jac = Matrix(n, n);
    iter_matrix = Matrix(n, n);
  }
  fval.resize(n);
  res.resize(n);
  ynew.resize(n);
  yprev.resize(n);
  lu_scratch.resize(n);
  fd_yp.resize(n);
  fd_f0.resize(n);
  fd_f1.resize(n);
  piv.resize(n);
}

void StiffIntegrator::numerical_jacobian(double t, std::span<const double> y,
                                         StiffWorkspace& ws) const {
  const std::size_t n = y.size();
  std::copy(y.begin(), y.end(), ws.fd_yp.begin());
  f_(t, y, ws.fd_f0);
  for (std::size_t j = 0; j < n; ++j) {
    const double eps = 1e-7 * std::max(std::fabs(y[j]), 1e-20);
    const double saved = ws.fd_yp[j];
    ws.fd_yp[j] = saved + eps;
    f_(t, ws.fd_yp, ws.fd_f1);
    ws.fd_yp[j] = saved;
    for (std::size_t i = 0; i < n; ++i)
      ws.jac(i, j) = (ws.fd_f1[i] - ws.fd_f0[i]) / eps;
  }
}

std::size_t StiffIntegrator::integrate(double t0, double t1,
                                       std::vector<double>& y,
                                       const OdeObserver& observer) const {
  StiffWorkspace ws;
  return integrate(t0, t1, std::span<double>(y), ws, observer);
}

std::size_t StiffIntegrator::integrate(double t0, double t1,
                                       std::span<double> y, StiffWorkspace& ws,
                                       const OdeObserver& observer) const {
  const std::size_t n = y.size();
  CAT_REQUIRE(t1 > t0, "stiff integrator marches forward only");
  ws.resize(n);  // cat-lint: allow-alloc (no-op once the workspace is sized)
  double t = t0;
  const bool fixed = opt_.fixed_step > 0.0;
  double h = fixed ? opt_.fixed_step : opt_.h_initial;
  const double h_max = opt_.h_max > 0.0 ? opt_.h_max : (t1 - t0);

  std::span<double> yprev(ws.yprev);  // y_{n-1} for BDF2
  std::copy(y.begin(), y.end(), yprev.begin());
  bool have_prev = false;
  double h_prev = 0.0;

  Matrix& jac = ws.jac;
  Matrix& iter_matrix = ws.iter_matrix;
  std::span<double> fval(ws.fval), res(ws.res), ynew(ws.ynew);
  std::size_t accepted = 0;

  for (std::size_t step = 0; step < opt_.max_steps; ++step) {
    if (t >= t0 + (t1 - t0) * (1.0 - 1e-12)) return accepted;
    if (fixed) h = opt_.fixed_step;
    h = std::min(h, t1 - t);
    h = std::min(h, h_max);

    const bool bdf2 = opt_.use_bdf2 && have_prev;
    // BDF2 with variable step ratio r = h/h_prev:
    //   y' = (alpha0 y + alpha1 y_n + alpha2 y_{n-1}) / h
    double alpha0 = 1.0, alpha1 = -1.0, alpha2 = 0.0;
    if (bdf2) {
      const double r = h / h_prev;
      alpha0 = (1.0 + 2.0 * r) / (1.0 + r);
      alpha1 = -(1.0 + r);
      alpha2 = r * r / (1.0 + r);
    }

    // Newton solve of  alpha0 y - h f(t+h, y) + alpha1 y_n + alpha2 y_{n-1} = 0
    std::copy(y.begin(), y.end(), ynew.begin());
    bool converged = false;
    if (jac_) {
      jac_(t + h, ynew, jac);
    } else {
      numerical_jacobian(t + h, ynew, ws);
    }
    // cat-lint: converges-by-construction (a Newton stall leaves
    // !converged set and the step controller below rejects the step and
    // halves h — exhaustion is recorded, not swallowed)
    for (std::size_t it = 0; it < opt_.max_newton; ++it) {
      f_(t + h, ynew, fval);
      double rnorm = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        res[i] = alpha0 * ynew[i] - h * fval[i] + alpha1 * y[i] +
                 alpha2 * (bdf2 ? yprev[i] : 0.0);
        const double scale =
            opt_.abs_tol + opt_.rel_tol * std::fabs(ynew[i]);
        rnorm = std::max(rnorm, std::fabs(res[i]) / scale);
      }
      if (rnorm < 1.0e-2) {  // residual small relative to tolerance scale
        converged = true;
        break;
      }
      // Iteration matrix M = alpha0 I - h J, factored in place (workspace
      // LU: no per-iteration allocation).
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          iter_matrix(i, j) = (i == j ? alpha0 : 0.0) - h * jac(i, j);
      try {
        lu_factor_inplace(iter_matrix, ws.piv);
        lu_solve_inplace(iter_matrix, ws.piv, res, ws.lu_scratch);
      } catch (const SolverError&) {
        converged = false;
        break;
      }
      for (std::size_t i = 0; i < n; ++i) ynew[i] -= res[i];
      if (!std::all_of(ynew.begin(), ynew.end(),
                       [](double v) { return std::isfinite(v); })) {
        converged = false;
        break;
      }
    }

    if (converged) {
      // Local-error control: the distance between the implicit solution
      // and the explicit history predictor estimates the truncation error
      // (standard BDF practice). Reject and shrink when it exceeds the
      // tolerance scale.
      double err = 0.0;
      if (!fixed && have_prev && h_prev > 0.0) {
        const double r = h / h_prev;
        for (std::size_t i = 0; i < n; ++i) {
          const double y_pred = y[i] + r * (y[i] - yprev[i]);
          const double scale =
              opt_.abs_tol + opt_.rel_tol * std::max(std::fabs(y[i]),
                                                     std::fabs(ynew[i]));
          err = std::max(err,
                         std::fabs(ynew[i] - y_pred) / (scale * 8.0));
        }
      }
      if (err > 1.0) {
        h *= std::clamp(0.9 / std::cbrt(err), 0.1, 0.9);
        if (h < 1e-30) throw SolverError("StiffIntegrator: step underflow");
        continue;  // reject: retry with smaller step
      }
      std::copy(y.begin(), y.end(), yprev.begin());
      std::copy(ynew.begin(), ynew.end(), y.begin());
      h_prev = h;
      have_prev = true;
      t += h;
      ++accepted;
      if (observer) observer(t, y);
      if (!fixed) {
        const double grow =
            err > 1e-8 ? std::clamp(0.9 / std::cbrt(err), 0.3, 2.2) : 2.2;
        h *= grow;
      }
    } else {
      if (fixed)
        throw SolverError(
            "StiffIntegrator: Newton failed at the forced step size");
      h *= 0.25;
      if (h < 1e-30) throw SolverError("StiffIntegrator: step underflow");
    }
  }
  throw SolverError("StiffIntegrator: max_steps exceeded");
}

}  // namespace cat::numerics
