#include "numerics/roots.hpp"

#include <cmath>

#include "core/error.hpp"

namespace cat::numerics {

double newton(const std::function<double(double)>& f,
              const std::function<double(double)>& dfdx, double x0,
              const RootOptions& opt) {
  double x = x0;
  for (std::size_t it = 0; it < opt.max_iter; ++it) {
    const double fx = f(x);
    if (opt.f_tol > 0.0 && std::fabs(fx) < opt.f_tol) return x;
    const double d = dfdx(x);
    if (std::fabs(d) < 1e-300) throw SolverError("newton: zero derivative");
    const double dx = fx / d;
    x -= dx;
    if (!std::isfinite(x)) throw SolverError("newton: diverged");
    if (std::fabs(dx) <= opt.tol * std::max(1.0, std::fabs(x))) return x;
  }
  throw SolverError("newton: max_iter exceeded");
}

double newton_bracketed(const std::function<double(double)>& f,
                        const std::function<double(double)>& dfdx, double lo,
                        double hi, const RootOptions& opt) {
  CAT_REQUIRE(lo < hi, "invalid bracket");
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  CAT_REQUIRE(flo * fhi < 0.0, "bracket does not change sign");

  double x = 0.5 * (lo + hi);
  for (std::size_t it = 0; it < opt.max_iter; ++it) {
    const double fx = f(x);
    if (opt.f_tol > 0.0 && std::fabs(fx) < opt.f_tol) return x;
    if (fx * flo < 0.0) {
      hi = x;
      fhi = fx;
    } else {
      lo = x;
      flo = fx;
    }
    const double d = dfdx(x);
    double xn = (std::fabs(d) > 1e-300) ? x - fx / d : lo - 1.0;  // force bisect
    if (!(xn > lo && xn < hi)) xn = 0.5 * (lo + hi);
    if (std::fabs(xn - x) <= opt.tol * std::max(1.0, std::fabs(xn))) return xn;
    x = xn;
  }
  throw SolverError("newton_bracketed: max_iter exceeded");
}

double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opt) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  CAT_REQUIRE(fa * fb < 0.0, "brent: bracket does not change sign");
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (std::size_t it = 0; it < std::max<std::size_t>(opt.max_iter, 200); ++it) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::fabs(b) + 0.5 * opt.tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) return b;
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc, r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      if (2.0 * p < std::min(3.0 * xm * q - std::fabs(tol1 * q),
                             std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : (xm > 0 ? tol1 : -tol1);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  throw SolverError("brent: max_iter exceeded");
}

double bisection(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opt) {
  double flo = f(lo);
  const double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  CAT_REQUIRE(flo * fhi < 0.0, "bisection: bracket does not change sign");
  // cat-lint: converges-by-construction (the bracket halves every
  // iteration and was sign-checked above; >= 200 halvings exhaust double
  // precision, so the final midpoint is as converged as the type allows)
  for (std::size_t it = 0; it < std::max<std::size_t>(opt.max_iter, 200); ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0 || (hi - lo) < opt.tol * std::max(1.0, std::fabs(mid)))
      return mid;
    if (fm * flo < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace cat::numerics
