#pragma once
/// \file tridiag.hpp
/// Scalar and block tridiagonal solvers (Thomas algorithm).
///
/// These are the workhorses of the marching solvers in this library: the
/// VSL, PNS and boundary-layer codes all reduce each streamwise station to
/// an implicit solve in the body-normal direction, which discretizes to a
/// (block-)tridiagonal linear system.

#include <span>
#include <vector>

#include "numerics/linalg.hpp"

namespace cat::numerics {

/// Solve the scalar tridiagonal system
///   a[i] x[i-1] + b[i] x[i] + c[i] x[i+1] = d[i],   i = 0..n-1
/// with a[0] and c[n-1] ignored. Returns x. Throws cat::SolverError when a
/// pivot vanishes (the Thomas algorithm does not pivot; CAT's diagonally
/// dominant systems never need it).
std::vector<double> solve_tridiagonal(std::span<const double> a,
                                      std::span<const double> b,
                                      std::span<const double> c,
                                      std::span<const double> d);

/// Block tridiagonal system solver.
///
/// Solves A[i] X[i-1] + B[i] X[i] + C[i] X[i+1] = D[i] for square blocks of
/// uniform dimension m. Uses block forward elimination with LU factorization
/// of the modified diagonal blocks (no inter-block pivoting).
class BlockTridiagonal {
 public:
  /// \p n  number of block rows, \p m  block dimension.
  BlockTridiagonal(std::size_t n, std::size_t m);

  std::size_t num_rows() const { return n_; }
  std::size_t block_dim() const { return m_; }

  Matrix& lower(std::size_t i) { return a_[i]; }
  Matrix& diag(std::size_t i) { return b_[i]; }
  Matrix& upper(std::size_t i) { return c_[i]; }
  std::span<double> rhs(std::size_t i) {
    return {d_.data() + i * m_, m_};
  }

  /// Solve the assembled system; returns the solution as n*m doubles,
  /// row-block i occupying [i*m, (i+1)*m). The assembled coefficients are
  /// destroyed (elimination happens in place).
  std::vector<double> solve();

 private:
  std::size_t n_, m_;
  std::vector<Matrix> a_, b_, c_;
  std::vector<double> d_;
};

/// Solve a scalar *periodic* tridiagonal system (wrap-around coupling
/// between first and last unknowns) via the Sherman-Morrison formula.
/// Used by azimuthal sweeps on closed surfaces.
std::vector<double> solve_periodic_tridiagonal(std::span<const double> a,
                                               std::span<const double> b,
                                               std::span<const double> c,
                                               std::span<const double> d);

}  // namespace cat::numerics
