#include "numerics/linalg.hpp"

#include <cmath>

#include "core/error.hpp"

namespace cat::numerics {

Matrix::Matrix(std::size_t r, std::size_t c, double value)
    : rows_(r), cols_(c), data_(r * c, value) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::axpy(double s, const Matrix& other) {
  CAT_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
              "axpy shape mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += s * other.data_[k];
}

Matrix& Matrix::operator+=(const Matrix& o) {
  axpy(1.0, o);
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  axpy(-1.0, o);
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  CAT_REQUIRE(a.cols() == b.rows(), "matrix product shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

std::vector<double> Matrix::operator*(std::span<const double> x) const {
  CAT_REQUIRE(cols_ == x.size(), "matrix-vector shape mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

LuFactor::LuFactor(const Matrix& a) : n_(a.rows()), lu_(a), piv_(a.rows()) {
  CAT_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;
  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest magnitude in column k below row k.
    std::size_t p = k;
    double pmax = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (pmax < 1e-300) {
      throw SolverError("LuFactor: matrix is numerically singular");
    }
    if (p != k) {
      for (std::size_t j = 0; j < n_; ++j) std::swap(lu_(k, j), lu_(p, j));
      std::swap(piv_[k], piv_[p]);
      pivot_sign_ = -pivot_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double m = lu_(i, k) * inv_pivot;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n_; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

void LuFactor::solve_inplace(std::span<double> b) const {
  CAT_REQUIRE(b.size() == n_, "rhs size mismatch");
  // Apply the row permutation, then forward/back substitution.
  std::vector<double> x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
  for (std::size_t i = 1; i < n_; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  for (std::size_t i = 0; i < n_; ++i) b[i] = x[i];
}

std::vector<double> LuFactor::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_inplace(x);
  return x;
}

Matrix LuFactor::solve(const Matrix& b) const {
  CAT_REQUIRE(b.rows() == n_, "matrix rhs shape mismatch");
  Matrix x(n_, b.cols());
  std::vector<double> col(n_);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < n_; ++i) col[i] = b(i, j);
    solve_inplace(col);
    for (std::size_t i = 0; i < n_; ++i) x(i, j) = col[i];
  }
  return x;
}

double LuFactor::determinant() const {
  double d = pivot_sign_;
  for (std::size_t i = 0; i < n_; ++i) d *= lu_(i, i);
  return d;
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  return LuFactor(a).solve(b);
}

Matrix inverse(const Matrix& a) {
  return LuFactor(a).solve(Matrix::identity(a.rows()));
}

double norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  CAT_REQUIRE(a.size() == b.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace cat::numerics
