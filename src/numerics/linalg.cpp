#include "numerics/linalg.hpp"

#include <cmath>

#include "core/error.hpp"

namespace cat::numerics {

Matrix::Matrix(std::size_t r, std::size_t c, double value)
    : rows_(r), cols_(c), data_(r * c, value) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::axpy(double s, const Matrix& other) {
  CAT_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
              "axpy shape mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += s * other.data_[k];
}

Matrix& Matrix::operator+=(const Matrix& o) {
  axpy(1.0, o);
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  axpy(-1.0, o);
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  CAT_REQUIRE(a.cols() == b.rows(), "matrix product shape mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

// cat-lint: allow-alloc (value-returning convenience API; the stiff hot
// loop uses lu_solve_inplace with workspace scratch instead)
std::vector<double> Matrix::operator*(std::span<const double> x) const {
  CAT_REQUIRE(cols_ == x.size(), "matrix-vector shape mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

LuFactor::LuFactor(const Matrix& a) : n_(a.rows()), lu_(a), piv_(a.rows()) {
  lu_factor_inplace(lu_, piv_);
  // Permutation parity for the determinant sign: count transpositions by
  // walking the cycles of piv_.
  // cat-lint: allow-alloc (factor-time parity walk, not the solve path)
  std::vector<bool> seen(n_, false);
  for (std::size_t i = 0; i < n_; ++i) {
    if (seen[i]) continue;
    std::size_t len = 0;
    for (std::size_t j = i; !seen[j]; j = piv_[j]) {
      seen[j] = true;
      ++len;
    }
    if (len % 2 == 0) pivot_sign_ = -pivot_sign_;
  }
}

// cat-lint: allow-alloc (convenience API; the stiff hot loop calls the
// free lu_solve_inplace with workspace scratch instead)
void LuFactor::solve_inplace(std::span<double> b) const {
  std::vector<double> scratch(n_);
  lu_solve_inplace(lu_, piv_, b, scratch);
}

// cat-lint: allow-alloc (value-returning convenience API)
std::vector<double> LuFactor::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_inplace(x);
  return x;
}

// cat-lint: allow-alloc (value-returning convenience API)
Matrix LuFactor::solve(const Matrix& b) const {
  CAT_REQUIRE(b.rows() == n_, "matrix rhs shape mismatch");
  Matrix x(n_, b.cols());
  std::vector<double> col(n_);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < n_; ++i) col[i] = b(i, j);
    solve_inplace(col);
    for (std::size_t i = 0; i < n_; ++i) x(i, j) = col[i];
  }
  return x;
}

double LuFactor::determinant() const {
  double d = pivot_sign_;
  for (std::size_t i = 0; i < n_; ++i) d *= lu_(i, i);
  return d;
}

void lu_factor_inplace(Matrix& a, std::span<std::size_t> piv) {
  const std::size_t n = a.rows();
  CAT_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  CAT_REQUIRE(piv.size() == n, "pivot array size mismatch");
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double pmax = std::fabs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(a(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (pmax < 1e-300) {
      throw SolverError("lu_factor_inplace: matrix is numerically singular");
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
      std::swap(piv[k], piv[p]);
    }
    const double inv_pivot = 1.0 / a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = a(i, k) * inv_pivot;
      a(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= m * a(k, j);
    }
  }
}

void lu_solve_inplace(const Matrix& lu, std::span<const std::size_t> piv,
                      std::span<double> b, std::span<double> scratch) {
  const std::size_t n = lu.rows();
  CAT_REQUIRE(b.size() == n && scratch.size() >= n, "rhs size mismatch");
  std::span<double> x = scratch.first(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(ii, j) * x[j];
    x[ii] = acc / lu(ii, ii);
  }
  for (std::size_t i = 0; i < n; ++i) b[i] = x[i];
}

// cat-lint: allow-alloc (value-returning convenience API)
std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  return LuFactor(a).solve(b);
}

Matrix inverse(const Matrix& a) {
  return LuFactor(a).solve(Matrix::identity(a.rows()));
}

double norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  CAT_REQUIRE(a.size() == b.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace cat::numerics
