#pragma once
/// \file tridiag_batch.hpp
/// Blocked Thomas sweeps: k independent scalar tridiagonal systems of the
/// same row count solved in one fused pass.
///
/// The Thomas recurrence is serial in the row index but every system is
/// independent, so storing the bands row-major with the system index
/// fastest ([row * k + sys]) turns the inner loop into a contiguous,
/// non-aliased sweep across systems that auto-vectorizes — one memory pass
/// over the bands instead of k. This feeds the implicit line solves of the
/// marching codes (VSL momentum + energy share one fused sweep per Picard
/// iteration) and the FV point-implicit lines.
///
/// Bitwise contract: each system executes exactly the operations of
/// solve_tridiagonal (tridiag.cpp) in the same order, including the
/// scale-invariant pivot test, so a fused solve reproduces the k separate
/// scalar solves bit for bit (pinned by the BatchEquivalence tests).

#include <cstddef>
#include <span>
#include <vector>

namespace cat::numerics {

/// Workspace-owning fused solver. resize() is growth-only, so a caller
/// that reuses one TridiagBatch across iterations performs zero heap
/// allocations after the first bind (the marching hot-path convention).
class TridiagBatch {
 public:
  TridiagBatch() = default;
  TridiagBatch(std::size_t n, std::size_t k) { resize(n, k); }

  /// Shape the workspace for \p k systems of \p n rows each. Band contents
  /// become unspecified; assemble before solving.
  void resize(std::size_t n, std::size_t k);

  std::size_t num_rows() const { return n_; }
  std::size_t num_systems() const { return k_; }

  /// Band element (row i, system j); a(0, j) and c(n-1, j) are ignored.
  double& a(std::size_t i, std::size_t j) { return a_[i * k_ + j]; }
  double& b(std::size_t i, std::size_t j) { return b_[i * k_ + j]; }
  double& c(std::size_t i, std::size_t j) { return c_[i * k_ + j]; }
  double& d(std::size_t i, std::size_t j) { return d_[i * k_ + j]; }

  /// Solve all k systems. Bands are preserved (elimination uses separate
  /// scratch), so a caller may re-solve with an updated RHS only. Throws
  /// cat::SolverError naming the first (row, system) with an unusable
  /// pivot.
  void solve();

  /// Solution element (row i, system j), valid after solve().
  double x(std::size_t i, std::size_t j) const { return x_[i * k_ + j]; }
  std::span<const double> solution() const { return x_; }

 private:
  std::size_t n_ = 0, k_ = 0;
  std::vector<double> a_, b_, c_, d_;  ///< bands, [row * k + sys]
  std::vector<double> cp_, dp_, x_;    ///< elimination scratch + solution
};

}  // namespace cat::numerics
