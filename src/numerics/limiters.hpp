#pragma once
/// \file limiters.hpp
/// Slope limiters for MUSCL reconstruction in the shock-capturing
/// finite-volume solvers (paper: "the upwind NS method used here allows the
/// hypersonic bow shock to be captured"). Header-only; all functions take
/// the left and right one-sided differences and return the limited slope.

#include <algorithm>
#include <cmath>

namespace cat::numerics {

/// Available limiter choices; `abl_limiters` sweeps these.
enum class Limiter { kNone, kMinmod, kVanLeer, kVanAlbada, kSuperbee };

inline double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::fabs(a) < std::fabs(b) ? a : b;
}

inline double van_leer(double a, double b) {
  const double ab = a * b;
  if (ab <= 0.0) return 0.0;
  return 2.0 * ab / (a + b);
}

inline double van_albada(double a, double b) {
  const double ab = a * b;
  if (ab <= 0.0) return 0.0;
  return ab * (a + b) / (a * a + b * b);
}

inline double superbee(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  const double s = a > 0.0 ? 1.0 : -1.0;
  const double aa = std::fabs(a), bb = std::fabs(b);
  return s * std::max(std::min(2.0 * aa, bb), std::min(aa, 2.0 * bb));
}

/// Dispatch on the enum; `kNone` returns zero slope (1st-order scheme).
inline double limited_slope(Limiter lim, double a, double b) {
  switch (lim) {
    case Limiter::kMinmod:    return minmod(a, b);
    case Limiter::kVanLeer:   return van_leer(a, b);
    case Limiter::kVanAlbada: return van_albada(a, b);
    case Limiter::kSuperbee:  return superbee(a, b);
    case Limiter::kNone:      break;
  }
  return 0.0;
}

}  // namespace cat::numerics
