#pragma once
/// \file roots.hpp
/// Scalar root finding: Newton with derivative, safeguarded Newton-bisection
/// hybrids, and Brent's method. Used to invert equations of state
/// (T from internal energy, equilibrium temperature iterations, Vigneron
/// pressure recovery, ...).

#include <functional>

namespace cat::numerics {

struct RootOptions {
  double tol = 1e-12;          ///< relative tolerance on x
  double f_tol = 0.0;          ///< optional absolute tolerance on f
  std::size_t max_iter = 100;
};

/// Newton's method with user-supplied derivative. Falls back to throwing
/// cat::SolverError if the derivative vanishes or iteration diverges.
double newton(const std::function<double(double)>& f,
              const std::function<double(double)>& dfdx, double x0,
              const RootOptions& opt = {});

/// Safeguarded Newton: bracketed by [lo, hi]; bisects whenever the Newton
/// step leaves the bracket. Robust default for EOS inversion.
double newton_bracketed(const std::function<double(double)>& f,
                        const std::function<double(double)>& dfdx, double lo,
                        double hi, const RootOptions& opt = {});

/// Brent's method on a sign-changing bracket [lo, hi].
double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opt = {});

/// Simple bisection (guaranteed, slow); mostly used as a test oracle.
double bisection(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opt = {});

}  // namespace cat::numerics
