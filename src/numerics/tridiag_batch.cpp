#include "numerics/tridiag_batch.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "core/error.hpp"

namespace cat::numerics {

namespace {

/// Same scale-invariant pivot test as tridiag.cpp — the fused sweep must
/// accept/reject exactly the systems the scalar solver would.
constexpr double kPivotRelTol = 100.0 * std::numeric_limits<double>::epsilon();

bool pivot_usable(double pivot, double row_scale) {
  return std::fabs(pivot) > kPivotRelTol * row_scale;
}

}  // namespace

// cat-lint: allow-alloc (workspace growth; no-op once at capacity)
void TridiagBatch::resize(std::size_t n, std::size_t k) {
  CAT_REQUIRE(n > 0 && k > 0, "empty batch system");
  n_ = n;
  k_ = k;
  const std::size_t sz = n * k;
  if (sz > a_.size()) {
    a_.resize(sz);
    b_.resize(sz);
    c_.resize(sz);
    d_.resize(sz);
    cp_.resize(sz);
    dp_.resize(sz);
    x_.resize(sz);
  }
}

void TridiagBatch::solve() {
  CAT_REQUIRE(n_ > 0 && k_ > 0, "solve() before resize()");
  const std::size_t n = n_, k = k_;
  // Row 0: per system, beta = b[0], scale = |b[0]| + |c[0]| — identical to
  // solve_tridiagonal's first pivot.
  for (std::size_t j = 0; j < k; ++j) {
    const double beta = b_[j];
    if (!pivot_usable(beta, std::fabs(b_[j]) + std::fabs(c_[j]))) {
      throw SolverError("tridiag batch: singular pivot in row 0, system " +
                        std::to_string(j));
    }
    cp_[j] = c_[j] / beta;
    dp_[j] = d_[j] / beta;
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double* ai = a_.data() + i * k;
    const double* bi = b_.data() + i * k;
    const double* ci = c_.data() + i * k;
    const double* di = d_.data() + i * k;
    const double* cpm = cp_.data() + (i - 1) * k;
    const double* dpm = dp_.data() + (i - 1) * k;
    double* cpi = cp_.data() + i * k;
    double* dpi = dp_.data() + i * k;
    for (std::size_t j = 0; j < k; ++j) {
      const double beta = bi[j] - ai[j] * cpm[j];
      const double row_scale =
          std::fabs(ai[j]) + std::fabs(bi[j]) + std::fabs(ci[j]);
      if (!pivot_usable(beta, row_scale)) {
        throw SolverError("tridiag batch: singular pivot in row " +
                          std::to_string(i) + ", system " + std::to_string(j));
      }
      cpi[j] = ci[j] / beta;
      dpi[j] = (di[j] - ai[j] * dpm[j]) / beta;
    }
  }
  for (std::size_t j = 0; j < k; ++j)
    x_[(n - 1) * k + j] = dp_[(n - 1) * k + j];
  for (std::size_t i = n - 1; i-- > 0;) {
    const double* cpi = cp_.data() + i * k;
    const double* dpi = dp_.data() + i * k;
    const double* xn = x_.data() + (i + 1) * k;
    double* xi = x_.data() + i * k;
    for (std::size_t j = 0; j < k; ++j) xi[j] = dpi[j] - cpi[j] * xn[j];
  }
}

}  // namespace cat::numerics
