#pragma once
/// \file interp.hpp
/// Interpolation utilities: piecewise-linear, monotone cubic (PCHIP), and
/// bilinear lookup on a regular 2-D grid. The bilinear table backs the fast
/// equilibrium EOS used inside the finite-volume solvers.

#include <cstddef>
#include <span>
#include <vector>

namespace cat::numerics {

/// Piecewise-linear interpolant on strictly increasing abscissae.
/// Evaluations outside the range clamp or extrapolate per `extrapolate`.
class LinearInterp {
 public:
  LinearInterp() = default;
  LinearInterp(std::vector<double> x, std::vector<double> y,
               bool extrapolate = false);

  double operator()(double x) const;
  /// Derivative dy/dx of the interpolant at x (piecewise constant).
  double derivative(double x) const;

  std::size_t size() const { return x_.size(); }
  std::span<const double> abscissae() const { return x_; }
  std::span<const double> ordinates() const { return y_; }

 private:
  std::vector<double> x_, y_;
  bool extrapolate_ = false;
  std::size_t locate(double x) const;
};

/// Monotone piecewise-cubic Hermite (PCHIP, Fritsch-Carlson slopes).
/// Preserves monotonicity of the data — essential when interpolating
/// thermodynamic tables where overshoot would produce unphysical states.
class Pchip {
 public:
  Pchip() = default;
  Pchip(std::vector<double> x, std::vector<double> y);

  double operator()(double x) const;
  double derivative(double x) const;

 private:
  std::vector<double> x_, y_, m_;  // m_ = endpoint slopes per node
  std::size_t locate(double x) const;
};

/// Bilinear interpolation on a regular (uniformly spaced) grid.
/// Values are stored row-major: v(i,j) = value at (x0 + i dx, y0 + j dy).
class BilinearTable {
 public:
  BilinearTable() = default;
  BilinearTable(double x0, double dx, std::size_t nx, double y0, double dy,
                std::size_t ny);

  double& at(std::size_t i, std::size_t j) { return v_[i * ny_ + j]; }
  double at(std::size_t i, std::size_t j) const { return v_[i * ny_ + j]; }

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  double xmin() const { return x0_; }
  double xmax() const { return x0_ + dx_ * static_cast<double>(nx_ - 1); }
  double ymin() const { return y0_; }
  double ymax() const { return y0_ + dy_ * static_cast<double>(ny_ - 1); }

  /// Bilinear value at (x, y); arguments are clamped to the table range.
  /// Queries exactly on a grid line (including the upper edges and the
  /// far corner) reproduce the stored node values exactly.
  double operator()(double x, double y) const;

 private:
  double x0_ = 0, dx_ = 1, y0_ = 0, dy_ = 1;
  std::size_t nx_ = 0, ny_ = 0;
  std::vector<double> v_;
};

}  // namespace cat::numerics
