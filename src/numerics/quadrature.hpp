#pragma once
/// \file quadrature.hpp
/// Numerical integration and the exponential integrals E_n used by the
/// tangent-slab radiative transport solution (plane-slab approximation of
/// the paper's "detailed spectral radiation transport").

#include <functional>
#include <span>
#include <vector>

namespace cat::numerics {

/// Composite trapezoid on sampled data (x strictly increasing).
double trapz(std::span<const double> x, std::span<const double> y);

/// Composite trapezoid of f on [a,b] with n uniform intervals.
double trapz(const std::function<double(double)>& f, double a, double b,
             std::size_t n);

/// Composite Simpson of f on [a,b] with n uniform intervals (n rounded up
/// to even).
double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n);

/// Gauss-Legendre nodes/weights on [-1, 1] for arbitrary order n
/// (Newton iteration on Legendre polynomials).
void gauss_legendre(std::size_t n, std::vector<double>& nodes,
                    std::vector<double>& weights);

/// Gauss-Legendre integration of f over [a, b] with n points.
double gauss(const std::function<double(double)>& f, double a, double b,
             std::size_t n);

/// Exponential integral E1(x) = \int_1^inf e^{-xt}/t dt, x > 0.
double expint_e1(double x);

/// Exponential integral E_n(x), n >= 1, x >= 0 (E_n(0) = 1/(n-1) for n>1).
double expint_en(int n, double x);

}  // namespace cat::numerics
