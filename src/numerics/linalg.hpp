#pragma once
/// \file linalg.hpp
/// Small dense linear algebra used by the implicit solvers.
///
/// The matrices that appear in CAT solvers are block entries of
/// tridiagonal systems (block size = number of conserved variables,
/// typically 4-14), so everything here is tuned for small dense systems:
/// row-major storage, LU with partial pivoting, no allocation in solve paths
/// when a Workspace is reused.

#include <cstddef>
#include <span>
#include <vector>

namespace cat::numerics {

/// Dynamically sized row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Create an \p r x \p c matrix initialised to \p value.
  Matrix(std::size_t r, std::size_t c, double value = 0.0);

  /// Identity matrix of dimension \p n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// In-place scaled addition: *this += s * other. Shapes must match.
  void axpy(double s, const Matrix& other);

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Dense matrix product (shapes checked).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product y = A x (shapes checked).
  std::vector<double> operator*(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
/// Factorizes once, then solves many right-hand sides cheaply — the access
/// pattern of block-tridiagonal elimination.
class LuFactor {
 public:
  /// Factorize \p a. Throws cat::SolverError if the matrix is singular to
  /// working precision.
  explicit LuFactor(const Matrix& a);

  std::size_t dim() const { return n_; }

  /// Solve A x = b in-place: \p b holds x on return.
  void solve_inplace(std::span<double> b) const;

  /// Solve A x = b; returns x.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solve A X = B for a matrix right-hand side; returns X.
  Matrix solve(const Matrix& b) const;

  /// Determinant from the factorization (product of U diagonal x sign).
  double determinant() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;                  // combined L (unit diagonal) and U factors
  std::vector<std::size_t> piv_;
  int pivot_sign_ = 1;
};

/// --- workspace (in-place) LU --------------------------------------------
/// Allocation-free factor/solve pair for hot loops that re-factorize every
/// iteration (the stiff integrator's Newton matrix): the caller owns both
/// the matrix storage and the pivot array, nothing is copied.

/// Factorize \p a in place (combined L with unit diagonal and U), recording
/// the row permutation in \p piv (size = a.rows()). Throws cat::SolverError
/// when the matrix is numerically singular.
void lu_factor_inplace(Matrix& a, std::span<std::size_t> piv);

/// Solve A x = b in place using factors/pivots from lu_factor_inplace; \p b
/// holds x on return. \p scratch must have size >= b.size().
void lu_solve_inplace(const Matrix& lu, std::span<const std::size_t> piv,
                      std::span<double> b, std::span<double> scratch);

/// Convenience: solve the dense system A x = b (single use).
std::vector<double> solve(const Matrix& a, std::span<const double> b);

/// Inverse via LU; prefer LuFactor::solve for repeated solves.
Matrix inverse(const Matrix& a);

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

/// Infinity norm of a vector.
double norm_inf(std::span<const double> v);

/// Dot product (sizes checked).
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace cat::numerics
